//! Aggregated simulation statistics.

use crate::core::CoreStats;
use crate::dram::DramStats;
use crate::icnt::NocStats;
use crate::partition::PartitionStats;
use crate::xbar::XbarStats;
use gcache_core::stats::CacheStats;
use std::fmt;

impl CoreStats {
    /// Accumulates another core's counters.
    pub fn merge(&mut self, other: &CoreStats) {
        self.instructions += other.instructions;
        self.mem_instructions += other.mem_instructions;
        self.transactions += other.transactions;
        self.idle_cycles += other.idle_cycles;
        self.ldst_full_stalls += other.ldst_full_stalls;
        self.mem_stall_cycles += other.mem_stall_cycles;
        self.ctas_completed += other.ctas_completed;
    }
}

impl DramStats {
    /// Accumulates another channel's counters.
    pub fn merge(&mut self, other: &DramStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.row_hits += other.row_hits;
        self.row_opens += other.row_opens;
        self.row_conflicts += other.row_conflicts;
        self.total_latency += other.total_latency;
        self.completed += other.completed;
    }
}

impl PartitionStats {
    /// Accumulates another partition's counters.
    pub fn merge(&mut self, other: &PartitionStats) {
        self.atomics += other.atomics;
        self.stall_cycles += other.stall_cycles;
    }
}

/// Everything a kernel run produced, aggregated across cores/partitions.
#[derive(Clone, Debug)]
pub struct SimStats {
    /// Kernel name.
    pub kernel: String,
    /// Design name of the L1 policy (e.g. `"GC"`).
    pub design: &'static str,
    /// Simulated core cycles.
    pub cycles: u64,
    /// Warp instructions issued across all cores.
    pub instructions: u64,
    /// Merged L1 statistics (all cores).
    pub l1: CacheStats,
    /// Merged shared-L1.5 statistics (all clusters); all-zero on a flat
    /// machine, which has no L1.5 level.
    pub l15: CacheStats,
    /// Merged L2 statistics (all banks).
    pub l2: CacheStats,
    /// Merged DRAM statistics (all channels).
    pub dram: DramStats,
    /// Request-network statistics.
    pub noc_req: NocStats,
    /// Response-network statistics.
    pub noc_resp: NocStats,
    /// Combined cluster-crossbar statistics (all clusters, both lanes);
    /// all-zero without crossbars (flat, or the legacy 1-port wiring).
    pub xbar: XbarStats,
    /// Total crossbar transfer ports (all clusters × both lanes), the
    /// denominator for a port-occupancy reading; 0 without crossbars.
    pub xbar_ports: u64,
    /// Merged core issue statistics.
    pub core: CoreStats,
    /// Merged partition statistics.
    pub partition: PartitionStats,
}

impl SimStats {
    /// An empty record for `kernel` under `design` (all counters zero) —
    /// the starting point for merges, and a convenient test fixture.
    pub fn new(kernel: &str, design: &'static str) -> Self {
        SimStats {
            kernel: kernel.to_string(),
            design,
            cycles: 0,
            instructions: 0,
            l1: Default::default(),
            l15: Default::default(),
            l2: Default::default(),
            dram: Default::default(),
            noc_req: Default::default(),
            noc_resp: Default::default(),
            xbar: Default::default(),
            xbar_ports: 0,
            core: Default::default(),
            partition: Default::default(),
        }
    }

    /// Instructions per cycle (warp-level); 0 for an empty run.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// L1 miss rate over all L1 accesses.
    pub fn l1_miss_rate(&self) -> f64 {
        self.l1.miss_rate()
    }

    /// Shared-L1.5 miss rate over all L1.5 accesses (0 on a flat machine).
    pub fn l15_miss_rate(&self) -> f64 {
        self.l15.miss_rate()
    }

    /// L1 bypass ratio (Table 3).
    pub fn l1_bypass_ratio(&self) -> f64 {
        self.l1.bypass_ratio()
    }

    /// Mean cluster-crossbar port occupancy: the fraction of available
    /// port·cycles spent serialising packets; 0 without crossbars.
    pub fn xbar_occupancy(&self) -> f64 {
        if self.xbar_ports == 0 || self.cycles == 0 {
            0.0
        } else {
            self.xbar.flit_cycles as f64 / (self.xbar_ports * self.cycles) as f64
        }
    }

    /// Speedup of this run over a baseline run of the same kernel
    /// (IPC ratio — cycle ratio would be equivalent for equal work).
    pub fn speedup_over(&self, baseline: &SimStats) -> f64 {
        if baseline.ipc() == 0.0 {
            0.0
        } else {
            self.ipc() / baseline.ipc()
        }
    }
}

impl fmt::Display for SimStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} [{}]: {} cycles, {} instructions, IPC {:.3}",
            self.kernel,
            self.design,
            self.cycles,
            self.instructions,
            self.ipc()
        )?;
        writeln!(
            f,
            "  L1: {:.1}% miss, {:.1}% bypass ({} accesses)",
            self.l1.miss_rate() * 100.0,
            self.l1.bypass_ratio() * 100.0,
            self.l1.accesses()
        )?;
        if self.l15.accesses() > 0 {
            writeln!(
                f,
                "  L1.5: {:.1}% miss ({} accesses)",
                self.l15.miss_rate() * 100.0,
                self.l15.accesses()
            )?;
        }
        writeln!(
            f,
            "  L2: {:.1}% miss ({} accesses), {} writebacks",
            self.l2.miss_rate() * 100.0,
            self.l2.accesses(),
            self.l2.writebacks
        )?;
        write!(
            f,
            "  DRAM: {} reads, {} writes, {:.1}% row hits | NoC mean lat {:.1}/{:.1}",
            self.dram.reads,
            self.dram.writes,
            self.dram.row_hit_rate() * 100.0,
            self.noc_req.mean_latency(),
            self.noc_resp.mean_latency()
        )
    }
}

/// Geometric mean of an iterator of ratios.
///
/// Defined edge cases (the inputs are measured speedups, so they can
/// legitimately degenerate):
///
/// * an **empty** iterator yields `1.0` — the mean over no benchmarks is
///   the identity speedup, so aggregating an empty suite is neutral;
/// * any **non-positive** value yields `0.0` — a zero or negative ratio
///   has no real logarithm, and a benchmark that made no progress should
///   drag the aggregate to the floor rather than poison it with `NaN`.
///
/// # Examples
///
/// ```
/// use gcache_sim::stats::geomean;
///
/// let g = geomean([2.0, 8.0]);
/// assert!((g - 4.0).abs() < 1e-12);
/// assert_eq!(geomean(std::iter::empty::<f64>()), 1.0);
/// assert_eq!(geomean([2.0, 0.0, 8.0]), 0.0);
/// ```
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        if v <= 0.0 {
            return 0.0;
        }
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        1.0
    } else {
        (log_sum / n as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(cycles: u64, instructions: u64) -> SimStats {
        SimStats {
            kernel: "test".into(),
            design: "BS",
            cycles,
            instructions,
            l1: CacheStats::new(),
            l15: CacheStats::new(),
            l2: CacheStats::new(),
            dram: DramStats::default(),
            noc_req: NocStats::default(),
            noc_resp: NocStats::default(),
            xbar: XbarStats::default(),
            xbar_ports: 0,
            core: CoreStats::default(),
            partition: PartitionStats::default(),
        }
    }

    #[test]
    fn ipc_and_speedup() {
        let base = stats(1000, 2000);
        let fast = stats(500, 2000);
        assert!((base.ipc() - 2.0).abs() < 1e-12);
        assert!((fast.speedup_over(&base) - 2.0).abs() < 1e-12);
        assert_eq!(stats(0, 0).ipc(), 0.0);
        assert_eq!(fast.speedup_over(&stats(0, 0)), 0.0);
    }

    #[test]
    fn geomean_edge_cases() {
        assert_eq!(
            geomean(std::iter::empty::<f64>()),
            1.0,
            "empty suite is the identity speedup"
        );
        assert_eq!(geomean([3.5]), 3.5, "singleton is itself");
        assert_eq!(geomean([1.0, 0.0]), 0.0, "zero drags to the floor");
        assert_eq!(geomean([-2.0, 4.0]), 0.0, "negative is clamped, not NaN");
        let g = geomean([0.5, 2.0]);
        assert!((g - 1.0).abs() < 1e-12, "reciprocal pair cancels");
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean([1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((geomean([4.0]) - 4.0).abs() < 1e-12);
        let g = geomean([1.2, 1.5, 0.9]);
        assert!(g > 0.9 && g < 1.5);
    }

    #[test]
    fn merge_core_stats() {
        let mut a = CoreStats {
            instructions: 10,
            ..CoreStats::default()
        };
        let b = CoreStats {
            instructions: 5,
            transactions: 7,
            ..CoreStats::default()
        };
        a.merge(&b);
        assert_eq!(a.instructions, 15);
        assert_eq!(a.transactions, 7);
    }

    #[test]
    fn display_contains_sections() {
        let s = stats(100, 100).to_string();
        assert!(s.contains("IPC"));
        assert!(s.contains("L1:"));
        assert!(s.contains("DRAM:"));
    }
}
