//! The componentized GPU system: node placement as data
//! ([`Topology`]), the dual-mesh interconnect with typed port views
//! ([`Interconnect`]), the SIMT core array ([`CoreComplex`]) and the
//! memory-partition array ([`MemorySystem`]).
//!
//! [`crate::gpu::Gpu`] is only a driver over these components: it ticks
//! them in pipeline order (cores → interconnect → memory) and watches for
//! progress. Components talk exclusively through [`TxPort`]/[`RxPort`]
//! views handed out by the interconnect, so an alternative hierarchy (more
//! levels, different placement, a shared L1.5) is a new wiring, not a new
//! cycle loop.

use crate::clocked::{min_event, Clocked, ClockedWith};
use crate::config::GpuConfig;
use crate::core::SimtCore;
use crate::icnt::{Mesh, NocStats};
use crate::isa::Kernel;
use crate::partition::Partition;
use crate::port::{RxPort, TxPort};
use crate::request::{partition_of, MemRequest, MemResponse};
use gcache_core::addr::{CoreId, PartitionId};

/// Node placement of cores and partitions on the mesh — the topology as
/// data, built by [`GpuConfig::topology`]. Components index through it
/// instead of hard-coding a placement rule.
#[derive(Clone, Debug)]
pub struct Topology {
    /// Mesh width in nodes.
    pub mesh_width: usize,
    /// Mesh height in nodes.
    pub mesh_height: usize,
    /// Mesh node of each core, indexed by core id.
    pub core_nodes: Vec<usize>,
    /// Mesh node of each memory partition, indexed by partition id.
    pub part_nodes: Vec<usize>,
}

impl Topology {
    /// Total mesh nodes.
    pub fn nodes(&self) -> usize {
        self.mesh_width * self.mesh_height
    }
}

/// The request/response mesh pair plus everything needed to address and
/// serialise packets: the [`Topology`] and the channel geometry.
#[derive(Debug)]
pub struct Interconnect {
    topo: Topology,
    req: Mesh<MemRequest>,
    resp: Mesh<MemResponse>,
    line_size: u32,
    channel_bytes: u32,
    partitions: usize,
}

impl Interconnect {
    /// Builds the two meshes described by `cfg`, placed per `topo`.
    pub fn new(cfg: &GpuConfig, topo: Topology) -> Self {
        let mut req =
            Mesh::new(cfg.mesh_width, cfg.mesh_height, cfg.router_queue, cfg.hop_latency, 1);
        let mut resp =
            Mesh::new(cfg.mesh_width, cfg.mesh_height, cfg.router_queue, cfg.hop_latency, 1);
        req.set_event_gating(cfg.fast_forward);
        resp.set_event_gating(cfg.fast_forward);
        Interconnect {
            topo,
            req,
            resp,
            line_size: cfg.line_size(),
            channel_bytes: cfg.channel_bytes,
            partitions: cfg.partitions,
        }
    }

    /// The node placement.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Request-mesh statistics.
    pub fn req_stats(&self) -> &NocStats {
        self.req.stats()
    }

    /// Response-mesh statistics.
    pub fn resp_stats(&self) -> &NocStats {
        self.resp.stats()
    }

    /// The port pair a core sees: responses in, requests out.
    pub fn core_ports(&mut self, core: usize) -> (MeshRx<'_, MemResponse>, ReqTx<'_>) {
        let Interconnect { topo, req, resp, line_size, channel_bytes, partitions } = self;
        let node = topo.core_nodes[core];
        (
            MeshRx { mesh: resp, node },
            ReqTx {
                mesh: req,
                topo,
                src: node,
                line_size: *line_size,
                channel_bytes: *channel_bytes,
                partitions: *partitions,
            },
        )
    }

    /// Whether core `core`'s local request-mesh port currently has room —
    /// the read-only flavour of its `ReqTx::can_send` view, used by the
    /// fast-forward probes. The answer is stable across event-free
    /// cycles: the queue drains only through mesh movement and fills only
    /// through the owning core's own injections.
    pub fn can_inject_core(&self, core: usize) -> bool {
        self.req.can_inject(self.topo.core_nodes[core])
    }

    /// Whether a response awaits ejection at core `core`'s port — the
    /// "external input" test of the gated core loop, answerable without
    /// borrowing the port pair.
    pub fn resp_pending_core(&self, core: usize) -> bool {
        self.resp.has_delivered(self.topo.core_nodes[core])
    }

    /// Whether a request awaits ejection at partition `part`'s port.
    pub fn req_pending_part(&self, part: usize) -> bool {
        self.req.has_delivered(self.topo.part_nodes[part])
    }

    /// The port pair a partition sees: requests in, responses out.
    pub fn partition_ports(&mut self, part: usize) -> (MeshRx<'_, MemRequest>, RespTx<'_>) {
        let Interconnect { topo, req, resp, line_size, channel_bytes, .. } = self;
        let node = topo.part_nodes[part];
        (
            MeshRx { mesh: req, node },
            RespTx {
                mesh: resp,
                topo,
                src: node,
                line_size: *line_size,
                channel_bytes: *channel_bytes,
            },
        )
    }
}

impl Clocked for Interconnect {
    fn tick(&mut self, now: u64) {
        self.req.tick(now);
        self.resp.tick(now);
    }

    fn is_idle(&self) -> bool {
        self.req.is_idle() && self.resp.is_idle()
    }

    fn next_event(&self, now: u64) -> Option<u64> {
        min_event(self.req.next_event(now), self.resp.next_event(now))
    }
}

/// Receiving port view: delivered packets at one mesh node.
#[derive(Debug)]
pub struct MeshRx<'a, M> {
    mesh: &'a mut Mesh<M>,
    node: usize,
}

impl<M> RxPort<M> for MeshRx<'_, M> {
    fn recv(&mut self) -> Option<M> {
        self.mesh.eject(self.node)
    }
}

/// Sending port view onto the request mesh: routes each request to the
/// node of the partition owning its line and serialises it into
/// channel-width flits.
#[derive(Debug)]
pub struct ReqTx<'a> {
    mesh: &'a mut Mesh<MemRequest>,
    topo: &'a Topology,
    src: usize,
    line_size: u32,
    channel_bytes: u32,
    partitions: usize,
}

impl TxPort<MemRequest> for ReqTx<'_> {
    fn can_send(&self) -> bool {
        self.mesh.can_inject(self.src)
    }

    fn send(&mut self, msg: MemRequest, now: u64) {
        let part = partition_of(msg.line, self.partitions);
        let dst = self.topo.part_nodes[part.index()];
        let flits = msg.packet_bytes(self.line_size).div_ceil(self.channel_bytes);
        self.mesh
            .inject_at(self.src, dst, flits, msg, now)
            .expect("injection gated by can_send");
    }
}

/// Sending port view onto the response mesh: routes each response to the
/// node of its destination core.
#[derive(Debug)]
pub struct RespTx<'a> {
    mesh: &'a mut Mesh<MemResponse>,
    topo: &'a Topology,
    src: usize,
    line_size: u32,
    channel_bytes: u32,
}

impl TxPort<MemResponse> for RespTx<'_> {
    fn can_send(&self) -> bool {
        self.mesh.can_inject(self.src)
    }

    fn send(&mut self, msg: MemResponse, now: u64) {
        let dst = self.topo.core_nodes[msg.core.index()];
        let flits = msg.packet_bytes(self.line_size).div_ceil(self.channel_bytes);
        self.mesh
            .inject_at(self.src, dst, flits, msg, now)
            .expect("injection gated by can_send");
    }
}

/// The SIMT core array plus the CTA dispatcher.
#[derive(Debug)]
pub struct CoreComplex {
    cores: Vec<SimtCore>,
    next_cta: usize,
    total_ctas: usize,
    rr_core: usize,
    /// Per-core event gating (the fast-forward flag of the config): a core
    /// whose cached wake-up cycle lies in the future is not ticked — its
    /// per-cycle stall accounting is replayed by [`SimtCore::skip`]
    /// instead, which is cycle-for-cycle identical and much cheaper than
    /// scanning 48 warp slots.
    ff: bool,
    /// Per-core lower bound on the next cycle the core can make progress
    /// without external input (`u64::MAX` = only external input wakes it).
    /// Refreshed after every real tick; reset on CTA launch.
    wake: Vec<u64>,
    /// Whether the core's LD/ST head is parked purely on network
    /// backpressure — the live `can_inject` state overrides `wake` then.
    wake_on_inject: Vec<bool>,
    /// Whether the core has any LD/ST transaction queued. When it does
    /// not, skipped cycles need no `can_inject` answer (the stall
    /// accounting never consults it), so the gated loop avoids probing
    /// the request mesh.
    has_head: Vec<bool>,
    /// `ctas_completed` sum at the last dispatch scan: CTA capacity can
    /// only grow when this advances, so the scan is elided otherwise.
    last_ctas_completed: u64,
}

impl CoreComplex {
    /// Builds `cfg.cores` SIMT cores, each with a freshly constructed L1
    /// policy instance for the configured design point.
    pub fn new(cfg: &GpuConfig) -> Self {
        let cores = (0..cfg.cores)
            .map(|i| {
                SimtCore::new(
                    CoreId(i),
                    cfg,
                    crate::config::make_l1_policy(&cfg.l1_policy, &cfg.l1_geometry),
                )
            })
            .collect();
        CoreComplex {
            cores,
            next_cta: 0,
            total_ctas: 0,
            rr_core: 0,
            ff: cfg.fast_forward,
            wake: vec![0; cfg.cores],
            wake_on_inject: vec![false; cfg.cores],
            has_head: vec![false; cfg.cores],
            last_ctas_completed: u64::MAX,
        }
    }

    /// Starts a kernel launch: resets the dispatcher and performs the
    /// initial round-robin CTA placement.
    pub fn begin_kernel(&mut self, kernel: &dyn Kernel) {
        self.next_cta = 0;
        self.total_ctas = kernel.grid().ctas;
        self.rr_core = 0;
        self.last_ctas_completed = u64::MAX;
        self.dispatch(kernel);
    }

    /// Round-robins pending CTAs over cores with free resources.
    ///
    /// On cycles where no CTA finished since the last scan, capacity
    /// cannot have grown and the scan is skipped under event gating —
    /// state-identically, because a fruitless scan advances the
    /// round-robin cursor by exactly one full lap.
    pub fn dispatch(&mut self, kernel: &dyn Kernel) {
        if self.ff && self.next_cta < self.total_ctas {
            let completed: u64 = self.cores.iter().map(|c| c.stats().ctas_completed).sum();
            if completed == self.last_ctas_completed {
                return;
            }
            self.last_ctas_completed = completed;
        }
        let n = self.cores.len();
        let mut stalled = 0;
        while self.next_cta < self.total_ctas && stalled < n {
            let c = self.rr_core % n;
            if self.cores[c].can_launch(kernel) {
                self.cores[c].launch_cta(kernel, self.next_cta);
                self.wake[c] = 0;
                self.next_cta += 1;
                stalled = 0;
            } else {
                stalled += 1;
            }
            self.rr_core = (self.rr_core + 1) % n;
        }
    }

    /// Whether every CTA of the current kernel has been placed on a core.
    pub fn fully_dispatched(&self) -> bool {
        self.next_cta >= self.total_ctas
    }

    /// The core array.
    pub fn cores(&self) -> &[SimtCore] {
        &self.cores
    }

    /// Mutable core array (kernel-end flush, stat collection).
    pub fn cores_mut(&mut self) -> &mut [SimtCore] {
        &mut self.cores
    }

    /// Total instructions issued across all cores (progress signature).
    pub fn instructions(&self) -> u64 {
        self.cores.iter().map(|c| c.stats().instructions).sum()
    }
}

impl ClockedWith<Interconnect> for CoreComplex {
    /// One core-array cycle: each core first drains its response port
    /// (waking warps), then runs its LD/ST pipeline and issue stage,
    /// injecting at most one request if the network has room.
    fn tick_with(&mut self, now: u64, icnt: &mut Interconnect) {
        for (i, core) in self.cores.iter_mut().enumerate() {
            // Gated pre-check, ordered cheapest-first and touching only
            // what the verdict needs: the cached wake bound, then the
            // response port (external input overrides everything), and
            // the request mesh only when a queued LD/ST head makes the
            // answer matter — for stall accounting or for the
            // backpressure wake-up.
            if self.ff && now < self.wake[i] && !icnt.resp_pending_core(i) {
                if !self.has_head[i] {
                    // No LD/ST head: skipped-cycle accounting never reads
                    // `can_inject`.
                    core.skip(now - 1, 1, false);
                    continue;
                }
                let can_inject = icnt.can_inject_core(i);
                if !(can_inject && self.wake_on_inject[i]) {
                    // Provably event-free core cycle: replay accounting.
                    core.skip(now - 1, 1, can_inject);
                    continue;
                }
            }
            let (mut rx, mut tx) = icnt.core_ports(i);
            while let Some(resp) = rx.recv() {
                core.on_response(resp);
            }
            let can_inject = tx.can_send();
            if let Some(req) = core.tick(now, can_inject) {
                tx.send(req, now);
            }
            if self.ff {
                // Refresh against post-tick state; the send above may have
                // filled the injection queue.
                let can_inject = tx.can_send();
                self.wake[i] = core.next_event(now, can_inject).unwrap_or(u64::MAX);
                self.wake_on_inject[i] = !can_inject && core.head_waiting_on_inject();
                self.has_head[i] = core.has_ldst_head();
            }
        }
    }

    fn is_idle(&self) -> bool {
        self.cores.iter().all(SimtCore::is_idle)
    }

    /// Minimum of the per-core bounds. CTA dispatch needs no bound of its
    /// own: a launch requires a core to free resources first, which
    /// requires a pickable warp — already bounded at `now + 1` — and on
    /// event-free cycles the round-robin dispatch scan is a no-op (its
    /// cursor advances exactly one full lap).
    fn next_event(&self, now: u64, icnt: &Interconnect) -> Option<u64> {
        let mut ev: Option<u64> = None;
        for (i, core) in self.cores.iter().enumerate() {
            // Under event gating the cached per-core bounds are current
            // (ticked cores were just refreshed, skipped cores are
            // unchanged since theirs were computed), so the warp scan is
            // elided.
            let e = if self.ff {
                if self.wake[i] <= now + 1
                    || (self.wake_on_inject[i] && icnt.can_inject_core(i))
                {
                    Some(now + 1)
                } else if self.wake[i] == u64::MAX {
                    None
                } else {
                    Some(self.wake[i])
                }
            } else {
                core.next_event(now, icnt.can_inject_core(i))
            };
            if e == Some(now + 1) {
                return e;
            }
            ev = min_event(ev, e);
        }
        ev
    }

    fn skip(&mut self, now: u64, cycles: u64, icnt: &Interconnect) {
        for (i, core) in self.cores.iter_mut().enumerate() {
            core.skip(now, cycles, icnt.can_inject_core(i));
        }
    }
}

/// The memory-partition array (L2 banks + AOUs + DRAM channels).
#[derive(Debug)]
pub struct MemorySystem {
    partitions: Vec<Partition>,
    /// Per-partition event gating, mirroring [`CoreComplex`]: a partition
    /// whose cached wake-up cycle lies ahead (and that received no request
    /// this cycle) is skipped outright — its event-free tick is a pure
    /// no-op, so unlike cores there is no accounting to replay.
    ff: bool,
    wake: Vec<u64>,
}

impl MemorySystem {
    /// Builds `cfg.partitions` memory partitions.
    pub fn new(cfg: &GpuConfig) -> Self {
        MemorySystem {
            partitions: (0..cfg.partitions).map(|p| Partition::new(PartitionId(p), cfg)).collect(),
            ff: cfg.fast_forward,
            wake: vec![0; cfg.partitions],
        }
    }

    /// The partition array.
    pub fn partitions(&self) -> &[Partition] {
        &self.partitions
    }

    /// Mutable partition array (kernel-end flush, stat collection).
    pub fn partitions_mut(&mut self) -> &mut [Partition] {
        &mut self.partitions
    }

    /// Total DRAM transactions completed (progress signature).
    pub fn dram_completed(&self) -> u64 {
        self.partitions.iter().map(|p| p.dram_stats().completed).sum()
    }
}

impl ClockedWith<Interconnect> for MemorySystem {
    /// One memory-system cycle: each partition drains its request port,
    /// advances L2/AOU/DRAM, and injects ready responses while the
    /// response mesh has room.
    fn tick_with(&mut self, now: u64, icnt: &mut Interconnect) {
        for (p, part) in self.partitions.iter_mut().enumerate() {
            if self.ff && now < self.wake[p] && !icnt.req_pending_part(p) {
                // No queued input and no internal event due: the whole
                // partition cycle is a no-op.
                continue;
            }
            let (mut rx, mut tx) = icnt.partition_ports(p);
            while let Some(req) = rx.recv() {
                part.push_request(req);
            }
            part.tick(now);
            while tx.can_send() {
                let Some(resp) = part.pop_response(now) else { break };
                tx.send(resp, now);
            }
            if self.ff {
                self.wake[p] = part.next_event(now).unwrap_or(u64::MAX);
            }
        }
    }

    fn is_idle(&self) -> bool {
        self.partitions.iter().all(Partition::is_idle)
    }

    fn next_event(&self, now: u64, _icnt: &Interconnect) -> Option<u64> {
        if self.ff {
            // The cached per-partition bounds are current (same argument
            // as for the cores); arrival of new requests is bounded by the
            // request mesh's own next event.
            let m = self.wake.iter().copied().min().unwrap_or(u64::MAX);
            return if m == u64::MAX { None } else { Some(m.max(now + 1)) };
        }
        let mut ev: Option<u64> = None;
        for p in &self.partitions {
            let e = p.next_event(now);
            if e == Some(now + 1) {
                return e;
            }
            ev = min_event(ev, e);
        }
        ev
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcache_core::addr::LineAddr;
    use gcache_core::policy::AccessKind;

    #[test]
    fn topology_places_cores_then_partitions() {
        let cfg = GpuConfig::fermi().unwrap();
        let topo = cfg.topology();
        assert_eq!(topo.core_nodes, (0..16).collect::<Vec<_>>());
        assert_eq!(topo.part_nodes, (16..24).collect::<Vec<_>>());
        assert_eq!(topo.nodes(), 24);
    }

    #[test]
    fn request_port_routes_to_owning_partition() {
        let cfg = GpuConfig::fermi().unwrap();
        let mut icnt = Interconnect::new(&cfg, cfg.topology());
        // Line 5 lives in partition 5 (low-bit interleaving, node 16 + 5).
        let req = MemRequest {
            line: LineAddr::new(5),
            kind: AccessKind::Read,
            core: CoreId(0),
            warp: 0,
        };
        {
            let (_, mut tx) = icnt.core_ports(0);
            assert!(tx.can_send());
            tx.send(req, 0);
        }
        let mut got = None;
        for now in 1..200 {
            icnt.tick(now);
            let (mut rx, _) = icnt.partition_ports(5);
            if let Some(r) = rx.recv() {
                got = Some(r);
                break;
            }
        }
        assert_eq!(got, Some(req));
        assert!(icnt.is_idle());
    }

    #[test]
    fn response_port_routes_to_destination_core() {
        let cfg = GpuConfig::fermi().unwrap();
        let mut icnt = Interconnect::new(&cfg, cfg.topology());
        let resp = MemResponse {
            line: LineAddr::new(5),
            kind: AccessKind::Read,
            core: CoreId(7),
            warp: 3,
            victim_hint: true,
        };
        {
            let (_, mut tx) = icnt.partition_ports(5);
            tx.send(resp, 0);
        }
        let mut got = None;
        for now in 1..200 {
            icnt.tick(now);
            let (mut rx, _) = icnt.core_ports(7);
            if let Some(r) = rx.recv() {
                got = Some(r);
                break;
            }
        }
        assert_eq!(got, Some(resp));
    }
}
