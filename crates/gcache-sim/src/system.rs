//! The componentized GPU system: node placement as data
//! ([`Topology`]), the dual-mesh interconnect with typed port views
//! ([`Interconnect`]), the SIMT core array ([`CoreComplex`]) and the
//! memory-partition array ([`MemorySystem`]).
//!
//! [`crate::gpu::Gpu`] is only a driver over these components: it ticks
//! them in pipeline order (cores → interconnect → memory) and watches for
//! progress. Components talk exclusively through [`TxPort`]/[`RxPort`]
//! views handed out by the interconnect, so an alternative hierarchy (more
//! levels, different placement, a shared L1.5) is a new wiring, not a new
//! cycle loop.

use crate::clocked::{min_event, Clocked, ClockedWith};
use crate::config::GpuConfig;
use crate::core::SimtCore;
use crate::icnt::{Mesh, NocStats};
use crate::isa::Kernel;
use crate::l15::L15Cluster;
use crate::partition::Partition;
use crate::port::{RxPort, TxPort};
use crate::request::{partition_of, MemRequest, MemResponse};
use crate::xbar::{ClusterXbar, XbarLane, XbarStats};
use gcache_core::addr::{CoreId, PartitionId};
use gcache_core::snapshot::{Snapshot, SnapshotError, SnapshotReader, SnapshotWriter};
use gcache_core::victim_bits::CoreGrouping;

/// Node placement of cores, partitions and (optionally) cluster caches on
/// the mesh — the topology as data, built by [`GpuConfig::topology`].
/// Components index through it instead of hard-coding a placement rule.
#[derive(Clone, Debug)]
pub struct Topology {
    /// Mesh width in nodes.
    pub mesh_width: usize,
    /// Mesh height in nodes.
    pub mesh_height: usize,
    /// Mesh node of each core, indexed by core id.
    pub core_nodes: Vec<usize>,
    /// Mesh node of each memory partition, indexed by partition id.
    pub part_nodes: Vec<usize>,
    /// Cluster of each core, indexed by core id. Total: defined for every
    /// core even on a flat machine (where it is the identity and no
    /// cluster nodes exist).
    pub cluster_of: Vec<usize>,
    /// Mesh node of each cluster's shared L1.5; empty = flat wiring (cores
    /// talk straight to the partitions).
    pub cluster_nodes: Vec<usize>,
}

impl Topology {
    /// Total mesh nodes.
    pub fn nodes(&self) -> usize {
        self.mesh_width * self.mesh_height
    }

    /// Number of cluster caches (0 = flat).
    pub fn clusters(&self) -> usize {
        self.cluster_nodes.len()
    }

    /// Whether core traffic routes through cluster nodes.
    pub fn is_clustered(&self) -> bool {
        !self.cluster_nodes.is_empty()
    }

    /// The victim-bit core→group map this topology induces for sharing
    /// factor `share` (§4.3): on a clustered machine with `share` ≥ the
    /// cluster size, whole clusters share a bit — the map goes through
    /// `cluster_of`, not through core-index arithmetic, so it stays
    /// correct under any cluster placement. A `share` below the cluster
    /// size subdivides each cluster modularly (the two must nest, see
    /// [`GpuConfig::validate`]), and a flat machine uses the paper's plain
    /// modular grouping.
    pub fn victim_grouping(&self, share: usize) -> CoreGrouping {
        let cores = self.core_nodes.len();
        if !self.is_clustered() {
            return CoreGrouping::modular(cores, share);
        }
        let cluster_size = cores / self.clusters();
        if share >= cluster_size {
            let clusters_per_group = share / cluster_size;
            CoreGrouping::from_map(
                self.cluster_of
                    .iter()
                    .map(|&c| c / clusters_per_group)
                    .collect(),
            )
        } else {
            CoreGrouping::modular(cores, share)
        }
    }
}

/// The request/response mesh pair plus everything needed to address and
/// serialise packets: the [`Topology`], the channel geometry and (with
/// `cluster_ports ≥ 2`) the per-cluster core↔L1.5 crossbars.
#[derive(Debug)]
pub struct Interconnect {
    topo: Topology,
    req: Mesh<MemRequest>,
    resp: Mesh<MemResponse>,
    /// One crossbar per cluster when `cluster_ports ≥ 2`; empty otherwise
    /// (flat machine, or the legacy 1-port wiring through the cluster's
    /// mesh node). When present, core↔L1.5 traffic moves over these lanes
    /// and only L1.5↔partition traffic rides the meshes.
    xbars: Vec<ClusterXbar>,
    /// Cores per cluster (0 when not clustered) — cores of a cluster are
    /// contiguous (see [`GpuConfig::topology`]), so a core's crossbar lane
    /// slot is `core % cluster_size`.
    cluster_size: usize,
    /// Per-lane transfer ports of each crossbar.
    cluster_ports: usize,
    line_size: u32,
    channel_bytes: u32,
    partitions: usize,
}

impl Interconnect {
    /// Builds the two meshes described by `cfg`, placed per `topo`, plus
    /// the per-cluster crossbars when `cfg.cluster_ports ≥ 2` asks for the
    /// modeled core↔L1.5 link.
    pub fn new(cfg: &GpuConfig, topo: Topology) -> Self {
        let mut req = Mesh::new(
            cfg.mesh_width,
            cfg.mesh_height,
            cfg.router_queue,
            cfg.hop_latency,
            1,
        );
        let mut resp = Mesh::new(
            cfg.mesh_width,
            cfg.mesh_height,
            cfg.router_queue,
            cfg.hop_latency,
            1,
        );
        req.set_event_gating(cfg.fast_forward);
        resp.set_event_gating(cfg.fast_forward);
        let cluster_size = if topo.is_clustered() {
            topo.core_nodes.len() / topo.clusters()
        } else {
            0
        };
        let xbars = if topo.is_clustered() && cfg.cluster_ports >= 2 {
            (0..topo.clusters())
                .map(|_| {
                    ClusterXbar::new(
                        cluster_size,
                        cfg.cluster_ports,
                        cfg.router_queue,
                        cfg.hop_latency,
                    )
                })
                .collect()
        } else {
            Vec::new()
        };
        Interconnect {
            topo,
            req,
            resp,
            xbars,
            cluster_size,
            cluster_ports: cfg.cluster_ports,
            line_size: cfg.line_size(),
            channel_bytes: cfg.channel_bytes,
            partitions: cfg.partitions,
        }
    }

    /// The node placement.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Request-mesh statistics.
    pub fn req_stats(&self) -> &NocStats {
        self.req.stats()
    }

    /// Response-mesh statistics.
    pub fn resp_stats(&self) -> &NocStats {
        self.resp.stats()
    }

    /// Combined statistics of all cluster crossbars, `None` when the
    /// machine runs the legacy 1-port (or flat) wiring.
    pub fn xbar_stats(&self) -> Option<XbarStats> {
        if self.xbars.is_empty() {
            return None;
        }
        Some(self.xbars.iter().fold(XbarStats::default(), |acc, xb| {
            let s = xb.stats();
            XbarStats {
                grants: acc.grants + s.grants,
                flit_cycles: acc.flit_cycles + s.flit_cycles,
                inject_fails: acc.inject_fails + s.inject_fails,
            }
        }))
    }

    /// Total transfer ports across all crossbar lanes (both directions) —
    /// the denominator for a port-occupancy reading; 0 without crossbars.
    pub fn xbar_ports_total(&self) -> usize {
        self.xbars.len() * self.cluster_ports * 2
    }

    /// Gauge: packets currently inside either mesh or any cluster
    /// crossbar (telemetry).
    pub fn in_flight(&self) -> usize {
        self.req.in_flight()
            + self.resp.in_flight()
            + self.xbars.iter().map(ClusterXbar::in_flight).sum::<usize>()
    }

    /// Gauge: the deepest per-router injection queue across both meshes
    /// right now (telemetry congestion reading).
    pub fn max_queue_depth(&self) -> u32 {
        self.req.max_local_queue().max(self.resp.max_local_queue())
    }

    /// The port pair a core sees: responses in, requests out. On a
    /// clustered topology the request view routes to the core's cluster
    /// node instead of straight to the owning partition — and with
    /// crossbars active, both views sit on the core's crossbar lanes
    /// instead of the meshes. The wiring changes, the core does not.
    pub fn core_ports(&mut self, core: usize) -> (CoreRx<'_>, ReqTx<'_>) {
        let Interconnect {
            topo,
            req,
            resp,
            xbars,
            cluster_size,
            line_size,
            channel_bytes,
            partitions,
            ..
        } = self;
        let node = topo.core_nodes[core];
        let via = topo
            .is_clustered()
            .then(|| topo.cluster_nodes[topo.cluster_of[core]]);
        let (rx_lane, tx_lane) = match xbars.get_mut(topo.cluster_of[core]) {
            Some(xb) => {
                let slot = core % *cluster_size;
                (Some((&mut xb.down, slot)), Some((&mut xb.up, slot)))
            }
            None => (None, None),
        };
        (
            CoreRx {
                mesh: resp,
                node,
                xbar: rx_lane,
            },
            ReqTx {
                mesh: req,
                topo,
                src: node,
                via,
                xbar: tx_lane,
                line_size: *line_size,
                channel_bytes: *channel_bytes,
                partitions: *partitions,
            },
        )
    }

    /// Whether core `core`'s local request port currently has room — the
    /// read-only flavour of its `ReqTx::can_send` view, used by the
    /// fast-forward probes. The answer is stable across event-free
    /// cycles: the queue (mesh injection queue, or crossbar up-lane
    /// source queue) drains only through interconnect movement and fills
    /// only through the owning core's own injections.
    pub fn can_inject_core(&self, core: usize) -> bool {
        match self.xbars.get(self.topo.cluster_of[core]) {
            Some(xb) => xb.up.can_accept(core % self.cluster_size),
            None => self.req.can_inject(self.topo.core_nodes[core]),
        }
    }

    /// Whether a response awaits ejection at core `core`'s port — the
    /// "external input" test of the gated core loop, answerable without
    /// borrowing the port pair.
    pub fn resp_pending_core(&self, core: usize) -> bool {
        match self.xbars.get(self.topo.cluster_of[core]) {
            Some(xb) => xb.down.has_delivered(core % self.cluster_size),
            None => self.resp.has_delivered(self.topo.core_nodes[core]),
        }
    }

    /// Whether a request awaits ejection at partition `part`'s port.
    pub fn req_pending_part(&self, part: usize) -> bool {
        self.req.has_delivered(self.topo.part_nodes[part])
    }

    /// Whether a request awaits ejection at cluster `cluster`'s L1.5 —
    /// from its crossbar up lane when active, else from its mesh node.
    pub fn req_pending_cluster(&self, cluster: usize) -> bool {
        match self.xbars.get(cluster) {
            Some(xb) => xb.up.has_delivered(0),
            None => self.req.has_delivered(self.topo.cluster_nodes[cluster]),
        }
    }

    /// Whether a response awaits ejection at cluster `cluster`'s node.
    pub fn resp_pending_cluster(&self, cluster: usize) -> bool {
        self.resp.has_delivered(self.topo.cluster_nodes[cluster])
    }

    /// The port pair a partition sees: requests in, responses out. On a
    /// clustered topology the response view routes back to the requesting
    /// core's cluster node (the L1.5 fills and re-distributes).
    pub fn partition_ports(&mut self, part: usize) -> (MeshRx<'_, MemRequest>, RespTx<'_>) {
        let Interconnect {
            topo,
            req,
            resp,
            line_size,
            channel_bytes,
            ..
        } = self;
        let node = topo.part_nodes[part];
        let to_clusters = topo.is_clustered();
        (
            MeshRx { mesh: req, node },
            RespTx {
                mesh: resp,
                topo,
                src: node,
                to_clusters,
                line_size: *line_size,
                channel_bytes: *channel_bytes,
            },
        )
    }

    /// The combined port views a cluster's shared L1.5 sees: on the
    /// request side it ejects its cores' requests (crossbar up lane when
    /// active, else its mesh node) and injects misses towards the owning
    /// partitions (always over the mesh); on the response side it ejects
    /// partition responses (always the mesh) and injects per-core
    /// responses (crossbar down lane when active, else the mesh).
    pub fn cluster_io(&mut self, cluster: usize) -> (ClusterReqIo<'_>, ClusterRespIo<'_>) {
        let Interconnect {
            topo,
            req,
            resp,
            xbars,
            cluster_size,
            line_size,
            channel_bytes,
            partitions,
            ..
        } = self;
        let topo = &*topo;
        let node = topo.cluster_nodes[cluster];
        let (xbar_up, xbar_down) = match xbars.get_mut(cluster) {
            Some(xb) => (Some(&mut xb.up), Some(&mut xb.down)),
            None => (None, None),
        };
        (
            ClusterReqIo {
                mesh: req,
                topo,
                node,
                xbar_up,
                line_size: *line_size,
                channel_bytes: *channel_bytes,
                partitions: *partitions,
            },
            ClusterRespIo {
                mesh: resp,
                topo,
                node,
                xbar_down,
                cluster_size: *cluster_size,
                line_size: *line_size,
                channel_bytes: *channel_bytes,
            },
        )
    }
}

impl Snapshot for Interconnect {
    /// Saves both meshes and the cluster crossbars; the topology and
    /// channel geometry are construction-time configuration.
    fn save(&self, w: &mut SnapshotWriter) {
        w.section("icnt", |w| {
            self.req.save(w);
            self.resp.save(w);
            w.usize(self.xbars.len());
            for xb in &self.xbars {
                xb.save(w);
            }
        });
    }

    fn restore(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        r.section("icnt", |r| {
            self.req.restore(r)?;
            self.resp.restore(r)?;
            let n = r.usize()?;
            if n != self.xbars.len() {
                return Err(SnapshotError::Mismatch {
                    what: format!(
                        "cluster crossbar count (snapshot {n}, machine {})",
                        self.xbars.len()
                    ),
                });
            }
            for xb in &mut self.xbars {
                xb.restore(r)?;
            }
            Ok(())
        })
    }
}

impl Clocked for Interconnect {
    fn tick(&mut self, now: u64) {
        self.req.tick(now);
        self.resp.tick(now);
        for xb in &mut self.xbars {
            xb.tick(now);
        }
    }

    fn is_idle(&self) -> bool {
        self.req.is_idle() && self.resp.is_idle() && self.xbars.iter().all(ClusterXbar::is_idle)
    }

    fn next_event(&self, now: u64) -> Option<u64> {
        // Route through the `Clocked` impls: under event gating they are
        // O(1) reads of the maintained wake words, and they equal the
        // full scans (the wake words are exact minima, with the same
        // `now + 1` clamping).
        let mut ev = min_event(
            Clocked::next_event(&self.req, now),
            Clocked::next_event(&self.resp, now),
        );
        for xb in &self.xbars {
            if ev == Some(now + 1) {
                break;
            }
            ev = min_event(ev, xb.next_event(now));
        }
        ev
    }
}

/// Receiving port view: delivered packets at one mesh node.
#[derive(Debug)]
pub struct MeshRx<'a, M> {
    mesh: &'a mut Mesh<M>,
    node: usize,
}

impl<M> RxPort<M> for MeshRx<'_, M> {
    fn recv(&mut self) -> Option<M> {
        self.mesh.eject(self.node)
    }
}

/// A core's receiving port view: responses delivered at its mesh node —
/// or, with cluster crossbars active, at its slot of the cluster's
/// down lane (the mesh then never carries responses to core nodes).
#[derive(Debug)]
pub struct CoreRx<'a> {
    mesh: &'a mut Mesh<MemResponse>,
    node: usize,
    xbar: Option<(&'a mut XbarLane<MemResponse>, usize)>,
}

impl RxPort<MemResponse> for CoreRx<'_> {
    fn recv(&mut self) -> Option<MemResponse> {
        match &mut self.xbar {
            Some((lane, slot)) => lane.eject(*slot),
            None => self.mesh.eject(self.node),
        }
    }
}

/// Sending port view onto the request mesh: routes each request to the
/// node of the partition owning its line — or, when the source core hangs
/// off a cluster cache, to that cluster's node (`via`) — and serialises it
/// into channel-width flits. With cluster crossbars active the request
/// instead enters the core's slot of its cluster's up lane.
#[derive(Debug)]
pub struct ReqTx<'a> {
    mesh: &'a mut Mesh<MemRequest>,
    topo: &'a Topology,
    src: usize,
    via: Option<usize>,
    xbar: Option<(&'a mut XbarLane<MemRequest>, usize)>,
    line_size: u32,
    channel_bytes: u32,
    partitions: usize,
}

impl TxPort<MemRequest> for ReqTx<'_> {
    fn can_send(&self) -> bool {
        match &self.xbar {
            Some((lane, slot)) => lane.can_accept(*slot),
            None => self.mesh.can_inject(self.src),
        }
    }

    fn send(&mut self, msg: MemRequest, now: u64) {
        let flits = msg
            .packet_bytes(self.line_size)
            .div_ceil(self.channel_bytes);
        if let Some((lane, slot)) = &mut self.xbar {
            let ok = lane.push(*slot, 0, flits, msg, now);
            assert!(ok, "injection gated by can_send");
            return;
        }
        let dst = match self.via {
            Some(node) => node,
            None => self.topo.part_nodes[partition_of(msg.line, self.partitions).index()],
        };
        self.mesh
            .inject_at(self.src, dst, flits, msg, now)
            .expect("injection gated by can_send");
    }
}

/// Sending port view onto the response mesh: routes each response to the
/// node of its destination core — or, on a clustered topology, to that
/// core's cluster node, where the L1.5 fills and re-distributes.
#[derive(Debug)]
pub struct RespTx<'a> {
    mesh: &'a mut Mesh<MemResponse>,
    topo: &'a Topology,
    src: usize,
    to_clusters: bool,
    line_size: u32,
    channel_bytes: u32,
}

impl TxPort<MemResponse> for RespTx<'_> {
    fn can_send(&self) -> bool {
        self.mesh.can_inject(self.src)
    }

    fn send(&mut self, msg: MemResponse, now: u64) {
        let core = msg.core.index();
        let dst = if self.to_clusters {
            self.topo.cluster_nodes[self.topo.cluster_of[core]]
        } else {
            self.topo.core_nodes[core]
        };
        let flits = msg
            .packet_bytes(self.line_size)
            .div_ceil(self.channel_bytes);
        self.mesh
            .inject_at(self.src, dst, flits, msg, now)
            .expect("injection gated by can_send");
    }
}

/// A cluster cache's combined request-side view: requests from its cores
/// eject here ([`RxPort`] — the crossbar up lane when active, else the
/// cluster's mesh node), and misses inject towards the partition owning
/// each line ([`TxPort`] — always over the mesh).
#[derive(Debug)]
pub struct ClusterReqIo<'a> {
    mesh: &'a mut Mesh<MemRequest>,
    topo: &'a Topology,
    node: usize,
    xbar_up: Option<&'a mut XbarLane<MemRequest>>,
    line_size: u32,
    channel_bytes: u32,
    partitions: usize,
}

impl RxPort<MemRequest> for ClusterReqIo<'_> {
    fn recv(&mut self) -> Option<MemRequest> {
        match &mut self.xbar_up {
            Some(lane) => lane.eject(0),
            None => self.mesh.eject(self.node),
        }
    }
}

impl TxPort<MemRequest> for ClusterReqIo<'_> {
    fn can_send(&self) -> bool {
        self.mesh.can_inject(self.node)
    }

    fn send(&mut self, msg: MemRequest, now: u64) {
        let dst = self.topo.part_nodes[partition_of(msg.line, self.partitions).index()];
        let flits = msg
            .packet_bytes(self.line_size)
            .div_ceil(self.channel_bytes);
        self.mesh
            .inject_at(self.node, dst, flits, msg, now)
            .expect("injection gated by can_send");
    }
}

/// A cluster cache's combined response-side view: partition responses
/// eject here ([`RxPort`] — always the mesh), and per-core responses
/// inject towards each destination core ([`TxPort`] — the crossbar down
/// lane when active, else the mesh).
#[derive(Debug)]
pub struct ClusterRespIo<'a> {
    mesh: &'a mut Mesh<MemResponse>,
    topo: &'a Topology,
    node: usize,
    xbar_down: Option<&'a mut XbarLane<MemResponse>>,
    cluster_size: usize,
    line_size: u32,
    channel_bytes: u32,
}

impl RxPort<MemResponse> for ClusterRespIo<'_> {
    fn recv(&mut self) -> Option<MemResponse> {
        self.mesh.eject(self.node)
    }
}

impl TxPort<MemResponse> for ClusterRespIo<'_> {
    fn can_send(&self) -> bool {
        match &self.xbar_down {
            Some(lane) => lane.can_accept(0),
            None => self.mesh.can_inject(self.node),
        }
    }

    fn send(&mut self, msg: MemResponse, now: u64) {
        let flits = msg
            .packet_bytes(self.line_size)
            .div_ceil(self.channel_bytes);
        if let Some(lane) = &mut self.xbar_down {
            let slot = msg.core.index() % self.cluster_size;
            let ok = lane.push(0, slot, flits, msg, now);
            assert!(ok, "injection gated by can_send");
            return;
        }
        let dst = self.topo.core_nodes[msg.core.index()];
        self.mesh
            .inject_at(self.node, dst, flits, msg, now)
            .expect("injection gated by can_send");
    }
}

/// The SIMT core array plus the CTA dispatcher.
#[derive(Debug)]
pub struct CoreComplex {
    cores: Vec<SimtCore>,
    next_cta: usize,
    total_ctas: usize,
    rr_core: usize,
    /// Per-core event gating (the fast-forward flag of the config): a core
    /// whose cached wake-up cycle lies in the future is not ticked — its
    /// per-cycle stall accounting is replayed by [`SimtCore::skip`]
    /// instead, which is cycle-for-cycle identical and much cheaper than
    /// scanning 48 warp slots.
    ff: bool,
    /// Per-core lower bound on the next cycle the core can make progress
    /// without external input (`u64::MAX` = only external input wakes it).
    /// Refreshed after every real tick; reset on CTA launch.
    wake: Vec<u64>,
    /// Whether the core's LD/ST head is parked purely on network
    /// backpressure — the live `can_inject` state overrides `wake` then.
    wake_on_inject: Vec<bool>,
    /// Whether the core has any LD/ST transaction queued. When it does
    /// not, skipped cycles need no `can_inject` answer (the stall
    /// accounting never consults it), so the gated loop avoids probing
    /// the request mesh.
    has_head: Vec<bool>,
    /// `ctas_completed` sum at the last dispatch scan: CTA capacity can
    /// only grow when this advances, so the scan is elided otherwise.
    last_ctas_completed: u64,
    /// Core ticks elided by the wake cache (self-profiling counter).
    wake_skips: u64,
}

impl CoreComplex {
    /// Builds `cfg.cores` SIMT cores, each with a freshly constructed L1
    /// policy instance for the configured design point.
    pub fn new(cfg: &GpuConfig) -> Self {
        let cores = (0..cfg.cores)
            .map(|i| {
                SimtCore::new(
                    CoreId(i),
                    cfg,
                    crate::config::make_l1_policy(&cfg.l1_policy, &cfg.l1_geometry),
                )
            })
            .collect();
        CoreComplex {
            cores,
            next_cta: 0,
            total_ctas: 0,
            rr_core: 0,
            ff: cfg.fast_forward,
            wake: vec![0; cfg.cores],
            wake_on_inject: vec![false; cfg.cores],
            has_head: vec![false; cfg.cores],
            last_ctas_completed: u64::MAX,
            wake_skips: 0,
        }
    }

    /// Starts a kernel launch: resets the dispatcher and performs the
    /// initial round-robin CTA placement.
    pub fn begin_kernel(&mut self, kernel: &dyn Kernel) {
        self.next_cta = 0;
        self.total_ctas = kernel.grid().ctas;
        self.rr_core = 0;
        self.last_ctas_completed = u64::MAX;
        self.dispatch(kernel);
    }

    /// Round-robins pending CTAs over cores with free resources.
    ///
    /// On cycles where no CTA finished since the last scan, capacity
    /// cannot have grown and the scan is skipped under event gating —
    /// state-identically, because a fruitless scan advances the
    /// round-robin cursor by exactly one full lap.
    pub fn dispatch(&mut self, kernel: &dyn Kernel) {
        if self.ff && self.next_cta < self.total_ctas {
            let completed: u64 = self.cores.iter().map(|c| c.stats().ctas_completed).sum();
            if completed == self.last_ctas_completed {
                return;
            }
            self.last_ctas_completed = completed;
        }
        let n = self.cores.len();
        let mut stalled = 0;
        while self.next_cta < self.total_ctas && stalled < n {
            let c = self.rr_core % n;
            if self.cores[c].can_launch(kernel) {
                self.cores[c].launch_cta(kernel, self.next_cta);
                self.wake[c] = 0;
                self.next_cta += 1;
                stalled = 0;
            } else {
                stalled += 1;
            }
            self.rr_core = (self.rr_core + 1) % n;
        }
    }

    /// Whether every CTA of the current kernel has been placed on a core.
    pub fn fully_dispatched(&self) -> bool {
        self.next_cta >= self.total_ctas
    }

    /// The core array.
    pub fn cores(&self) -> &[SimtCore] {
        &self.cores
    }

    /// Mutable core array (kernel-end flush, stat collection).
    pub fn cores_mut(&mut self) -> &mut [SimtCore] {
        &mut self.cores
    }

    /// Total instructions issued across all cores (progress signature).
    pub fn instructions(&self) -> u64 {
        self.cores.iter().map(|c| c.stats().instructions).sum()
    }

    /// Core ticks elided by the per-core wake cache (self-profiling).
    pub const fn wake_skips(&self) -> u64 {
        self.wake_skips
    }

    /// Serializes the core array and the CTA dispatcher state. The
    /// per-core wake caches are *not* serialized: restore parks them at
    /// "tick next cycle", which is state-identical (a tick on an
    /// event-free cycle equals the replayed skip) and they re-tighten on
    /// the first real tick.
    pub fn save_snapshot(&self, w: &mut SnapshotWriter) {
        w.section("core_complex", |w| {
            w.usize(self.cores.len());
            for core in &self.cores {
                core.save_snapshot(w);
            }
            w.usize(self.next_cta);
            w.usize(self.total_ctas);
            w.usize(self.rr_core);
            w.u64(self.last_ctas_completed);
            w.u64(self.wake_skips);
        });
    }

    /// Restores state saved by [`CoreComplex::save_snapshot`]. `kernel`
    /// must be the kernel that was running at save time (see
    /// [`SimtCore::restore_snapshot`]).
    pub fn restore_snapshot(
        &mut self,
        r: &mut SnapshotReader<'_>,
        kernel: &dyn Kernel,
    ) -> Result<(), SnapshotError> {
        r.section("core_complex", |r| {
            let n = r.usize()?;
            if n != self.cores.len() {
                return Err(SnapshotError::Mismatch {
                    what: format!("core count (snapshot {n}, machine {})", self.cores.len()),
                });
            }
            for core in &mut self.cores {
                core.restore_snapshot(r, kernel)?;
            }
            self.next_cta = r.usize()?;
            self.total_ctas = r.usize()?;
            self.rr_core = r.usize()?;
            self.last_ctas_completed = r.u64()?;
            self.wake_skips = r.u64()?;
            self.wake.fill(0);
            self.wake_on_inject.fill(false);
            self.has_head.fill(false);
            Ok(())
        })
    }
}

impl ClockedWith<Interconnect> for CoreComplex {
    /// One core-array cycle: each core first drains its response port
    /// (waking warps), then runs its LD/ST pipeline and issue stage,
    /// injecting at most one request if the network has room.
    fn tick_with(&mut self, now: u64, icnt: &mut Interconnect) {
        for (i, core) in self.cores.iter_mut().enumerate() {
            // Gated pre-check, ordered cheapest-first and touching only
            // what the verdict needs: the cached wake bound, then the
            // response port (external input overrides everything), and
            // the request mesh only when a queued LD/ST head makes the
            // answer matter — for stall accounting or for the
            // backpressure wake-up.
            if self.ff && now < self.wake[i] && !icnt.resp_pending_core(i) {
                if !self.has_head[i] {
                    // No LD/ST head: skipped-cycle accounting never reads
                    // `can_inject`.
                    core.skip(now - 1, 1, false);
                    self.wake_skips += 1;
                    continue;
                }
                let can_inject = icnt.can_inject_core(i);
                if !(can_inject && self.wake_on_inject[i]) {
                    // Provably event-free core cycle: replay accounting.
                    core.skip(now - 1, 1, can_inject);
                    self.wake_skips += 1;
                    continue;
                }
            }
            let (mut rx, mut tx) = icnt.core_ports(i);
            while let Some(resp) = rx.recv() {
                core.on_response(resp);
            }
            let can_inject = tx.can_send();
            if let Some(req) = core.tick(now, can_inject) {
                tx.send(req, now);
            }
            if self.ff {
                // Refresh against post-tick state; the send above may have
                // filled the injection queue.
                let can_inject = tx.can_send();
                self.wake[i] = core.next_event(now, can_inject).unwrap_or(u64::MAX);
                self.wake_on_inject[i] = !can_inject && core.head_waiting_on_inject();
                self.has_head[i] = core.has_ldst_head();
            }
        }
    }

    fn is_idle(&self) -> bool {
        self.cores.iter().all(SimtCore::is_idle)
    }

    /// Minimum of the per-core bounds. CTA dispatch needs no bound of its
    /// own: a launch requires a core to free resources first, which
    /// requires a pickable warp — already bounded at `now + 1` — and on
    /// event-free cycles the round-robin dispatch scan is a no-op (its
    /// cursor advances exactly one full lap).
    fn next_event(&self, now: u64, icnt: &Interconnect) -> Option<u64> {
        let mut ev: Option<u64> = None;
        for (i, core) in self.cores.iter().enumerate() {
            // Under event gating the cached per-core bounds are current
            // (ticked cores were just refreshed, skipped cores are
            // unchanged since theirs were computed), so the warp scan is
            // elided.
            let e = if self.ff {
                if self.wake[i] <= now + 1 || (self.wake_on_inject[i] && icnt.can_inject_core(i)) {
                    Some(now + 1)
                } else if self.wake[i] == u64::MAX {
                    None
                } else {
                    Some(self.wake[i])
                }
            } else {
                core.next_event(now, icnt.can_inject_core(i))
            };
            if e == Some(now + 1) {
                return e;
            }
            ev = min_event(ev, e);
        }
        ev
    }

    fn skip(&mut self, now: u64, cycles: u64, icnt: &Interconnect) {
        for (i, core) in self.cores.iter_mut().enumerate() {
            core.skip(now, cycles, icnt.can_inject_core(i));
        }
    }
}

/// The memory-partition array (L2 banks + AOUs + DRAM channels).
#[derive(Debug)]
pub struct MemorySystem {
    partitions: Vec<Partition>,
    /// Per-partition event gating, mirroring [`CoreComplex`]: a partition
    /// whose cached wake-up cycle lies ahead (and that received no request
    /// this cycle) is skipped outright — its event-free tick is a pure
    /// no-op, so unlike cores there is no accounting to replay.
    ff: bool,
    wake: Vec<u64>,
    /// Partition ticks elided by the wake cache (self-profiling counter).
    wake_skips: u64,
}

impl MemorySystem {
    /// Builds `cfg.partitions` memory partitions.
    pub fn new(cfg: &GpuConfig) -> Self {
        MemorySystem {
            partitions: (0..cfg.partitions)
                .map(|p| Partition::new(PartitionId(p), cfg))
                .collect(),
            ff: cfg.fast_forward,
            wake: vec![0; cfg.partitions],
            wake_skips: 0,
        }
    }

    /// Partition ticks elided by the per-partition wake cache
    /// (self-profiling).
    pub const fn wake_skips(&self) -> u64 {
        self.wake_skips
    }

    /// The partition array.
    pub fn partitions(&self) -> &[Partition] {
        &self.partitions
    }

    /// Mutable partition array (kernel-end flush, stat collection).
    pub fn partitions_mut(&mut self) -> &mut [Partition] {
        &mut self.partitions
    }

    /// Total DRAM transactions completed (progress signature).
    pub fn dram_completed(&self) -> u64 {
        self.partitions
            .iter()
            .map(|p| p.dram_stats().completed)
            .sum()
    }
}

impl Snapshot for MemorySystem {
    /// Saves every partition. The wake cache is not serialized; restore
    /// parks every partition at "tick next cycle" (state-identical, see
    /// [`CoreComplex::save_snapshot`]).
    fn save(&self, w: &mut SnapshotWriter) {
        w.section("mem_system", |w| {
            w.usize(self.partitions.len());
            for part in &self.partitions {
                part.save(w);
            }
            w.u64(self.wake_skips);
        });
    }

    fn restore(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        r.section("mem_system", |r| {
            let n = r.usize()?;
            if n != self.partitions.len() {
                return Err(SnapshotError::Mismatch {
                    what: format!(
                        "partition count (snapshot {n}, machine {})",
                        self.partitions.len()
                    ),
                });
            }
            for part in &mut self.partitions {
                part.restore(r)?;
            }
            self.wake_skips = r.u64()?;
            self.wake.fill(0);
            Ok(())
        })
    }
}

impl ClockedWith<Interconnect> for MemorySystem {
    /// One memory-system cycle: each partition drains its request port,
    /// advances L2/AOU/DRAM, and injects ready responses while the
    /// response mesh has room.
    fn tick_with(&mut self, now: u64, icnt: &mut Interconnect) {
        for (p, part) in self.partitions.iter_mut().enumerate() {
            if self.ff && now < self.wake[p] && !icnt.req_pending_part(p) {
                // No queued input and no internal event due: the whole
                // partition cycle is a no-op.
                self.wake_skips += 1;
                continue;
            }
            let (mut rx, mut tx) = icnt.partition_ports(p);
            while let Some(req) = rx.recv() {
                part.push_request(req);
            }
            part.tick(now);
            while tx.can_send() {
                let Some(resp) = part.pop_response(now) else {
                    break;
                };
                tx.send(resp, now);
            }
            if self.ff {
                self.wake[p] = part.next_event(now).unwrap_or(u64::MAX);
            }
        }
    }

    fn is_idle(&self) -> bool {
        self.partitions.iter().all(Partition::is_idle)
    }

    fn next_event(&self, now: u64, _icnt: &Interconnect) -> Option<u64> {
        if self.ff {
            // The cached per-partition bounds are current (same argument
            // as for the cores); arrival of new requests is bounded by the
            // request mesh's own next event.
            let m = self.wake.iter().copied().min().unwrap_or(u64::MAX);
            return if m == u64::MAX {
                None
            } else {
                Some(m.max(now + 1))
            };
        }
        let mut ev: Option<u64> = None;
        for p in &self.partitions {
            let e = p.next_event(now);
            if e == Some(now + 1) {
                return e;
            }
            ev = min_event(ev, e);
        }
        ev
    }
}

/// The cluster-cache array — one shared L1.5 per core cluster. Empty on a
/// flat machine, where every method is a no-op so the flat pipeline pays
/// nothing for the extra hierarchy level.
#[derive(Debug)]
pub struct ClusterComplex {
    clusters: Vec<L15Cluster>,
    /// Per-cluster event gating, mirroring [`MemorySystem`]: a cluster
    /// whose cached wake-up cycle lies ahead and that has no traffic
    /// waiting at its node is skipped outright.
    ff: bool,
    wake: Vec<u64>,
    /// Cluster ticks elided by the wake cache (self-profiling counter).
    wake_skips: u64,
}

impl ClusterComplex {
    /// Builds one shared L1.5 per cluster of `topo` (none when flat).
    pub fn new(cfg: &GpuConfig, topo: &Topology) -> Self {
        let n = topo.clusters();
        ClusterComplex {
            clusters: (0..n).map(|_| L15Cluster::new(cfg)).collect(),
            ff: cfg.fast_forward,
            wake: vec![0; n],
            wake_skips: 0,
        }
    }

    /// Cluster ticks elided by the per-cluster wake cache (self-profiling).
    pub const fn wake_skips(&self) -> u64 {
        self.wake_skips
    }

    /// Whether the machine is flat (no cluster caches to tick).
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// The cluster-cache array.
    pub fn clusters(&self) -> &[L15Cluster] {
        &self.clusters
    }

    /// Mutable cluster-cache array (kernel-end flush, stat collection).
    pub fn clusters_mut(&mut self) -> &mut [L15Cluster] {
        &mut self.clusters
    }
}

impl Snapshot for ClusterComplex {
    /// Saves every cluster cache (a no-op payload on a flat machine). The
    /// wake cache is rebuilt, not serialized.
    fn save(&self, w: &mut SnapshotWriter) {
        w.section("cluster_complex", |w| {
            w.usize(self.clusters.len());
            for cl in &self.clusters {
                cl.save(w);
            }
            w.u64(self.wake_skips);
        });
    }

    fn restore(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        r.section("cluster_complex", |r| {
            let n = r.usize()?;
            if n != self.clusters.len() {
                return Err(SnapshotError::Mismatch {
                    what: format!(
                        "cluster count (snapshot {n}, machine {})",
                        self.clusters.len()
                    ),
                });
            }
            for cl in &mut self.clusters {
                cl.restore(r)?;
            }
            self.wake_skips = r.u64()?;
            self.wake.fill(0);
            Ok(())
        })
    }
}

impl ClockedWith<Interconnect> for ClusterComplex {
    /// One cluster-array cycle: each L1.5 drains both its mesh ports,
    /// serves one request, and injects ready forwards/responses while the
    /// meshes have room.
    fn tick_with(&mut self, now: u64, icnt: &mut Interconnect) {
        for (c, cluster) in self.clusters.iter_mut().enumerate() {
            if self.ff
                && now < self.wake[c]
                && !icnt.req_pending_cluster(c)
                && !icnt.resp_pending_cluster(c)
            {
                // No queued input on either mesh and no internal event
                // due: the whole cluster cycle is a no-op.
                self.wake_skips += 1;
                continue;
            }
            let (mut req_io, mut resp_io) = icnt.cluster_io(c);
            cluster.tick(now, &mut req_io, &mut resp_io);
            if self.ff {
                self.wake[c] = cluster.next_event(now).unwrap_or(u64::MAX);
            }
        }
    }

    fn is_idle(&self) -> bool {
        self.clusters.iter().all(L15Cluster::is_idle)
    }

    fn next_event(&self, now: u64, _icnt: &Interconnect) -> Option<u64> {
        if self.ff {
            // The cached per-cluster bounds are current (same argument as
            // for the partitions); arrival of new traffic is bounded by
            // each mesh's own next event.
            let m = self.wake.iter().copied().min().unwrap_or(u64::MAX);
            return if m == u64::MAX {
                None
            } else {
                Some(m.max(now + 1))
            };
        }
        let mut ev: Option<u64> = None;
        for cluster in &self.clusters {
            let e = cluster.next_event(now);
            if e == Some(now + 1) {
                return e;
            }
            ev = min_event(ev, e);
        }
        ev
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Hierarchy;
    use gcache_core::addr::LineAddr;
    use gcache_core::policy::AccessKind;

    #[test]
    fn topology_places_cores_then_partitions() {
        let cfg = GpuConfig::fermi().unwrap();
        let topo = cfg.topology();
        assert_eq!(topo.core_nodes, (0..16).collect::<Vec<_>>());
        assert_eq!(topo.part_nodes, (16..24).collect::<Vec<_>>());
        assert_eq!(topo.nodes(), 24);
        assert!(!topo.is_clustered());
        assert_eq!(topo.cluster_of.len(), 16);
    }

    fn clustered_cfg(cluster_size: usize) -> GpuConfig {
        GpuConfig::fermi()
            .unwrap()
            .with_hierarchy(Hierarchy::SharedL15 {
                cluster_size,
                kb: 64,
            })
            .unwrap()
    }

    #[test]
    fn clustered_topology_places_cluster_nodes_after_partitions() {
        let cfg = clustered_cfg(4);
        let topo = cfg.topology();
        assert_eq!(topo.clusters(), 4);
        assert_eq!(topo.cluster_nodes, (24..28).collect::<Vec<_>>());
        assert!(topo.nodes() >= 28);
        // Every core belongs to exactly one cluster, contiguously: cores
        // 0..4 → cluster 0, 4..8 → cluster 1, and so on.
        assert_eq!(topo.cluster_of.len(), 16);
        for (core, &cluster) in topo.cluster_of.iter().enumerate() {
            assert_eq!(cluster, core / 4, "core {core}");
        }
        for cluster in 0..topo.clusters() {
            assert_eq!(topo.cluster_of.iter().filter(|&&c| c == cluster).count(), 4);
        }
    }

    #[test]
    fn victim_grouping_flat_matches_modular() {
        let topo = GpuConfig::fermi().unwrap().topology();
        let g = topo.victim_grouping(4);
        assert_eq!(g.groups(), 4);
        for core in 0..16 {
            assert_eq!(g.group_of(core), core / 4, "core {core}");
        }
    }

    #[test]
    fn victim_grouping_share_equal_to_cluster_follows_cluster_map() {
        let topo = clustered_cfg(4).topology();
        let g = topo.victim_grouping(4);
        assert_eq!(g.groups(), 4);
        for core in 0..16 {
            assert_eq!(g.group_of(core), topo.cluster_of[core], "core {core}");
        }
    }

    #[test]
    fn victim_grouping_share_spanning_clusters_merges_them() {
        // share 8 on 4-core clusters: two whole clusters per victim bit.
        let topo = clustered_cfg(4).topology();
        let g = topo.victim_grouping(8);
        assert_eq!(g.groups(), 2);
        for core in 0..16 {
            assert_eq!(g.group_of(core), topo.cluster_of[core] / 2, "core {core}");
        }
    }

    #[test]
    fn victim_grouping_share_below_cluster_subdivides_it() {
        // share 4 on 8-core clusters: two groups per cluster, and no group
        // straddles a cluster boundary (cores per cluster are contiguous).
        let topo = clustered_cfg(8).topology();
        let g = topo.victim_grouping(4);
        assert_eq!(g.groups(), 4);
        for core in 0..16 {
            assert_eq!(g.group_of(core), core / 4, "core {core}");
            assert_eq!(g.group_of(core) / 2, topo.cluster_of[core], "core {core}");
        }
    }

    #[test]
    fn request_port_routes_to_owning_partition() {
        let cfg = GpuConfig::fermi().unwrap();
        let mut icnt = Interconnect::new(&cfg, cfg.topology());
        // Line 5 lives in partition 5 (low-bit interleaving, node 16 + 5).
        let req = MemRequest {
            line: LineAddr::new(5),
            kind: AccessKind::Read,
            core: CoreId(0),
            warp: 0,
            class: None,
        };
        {
            let (_, mut tx) = icnt.core_ports(0);
            assert!(tx.can_send());
            tx.send(req, 0);
        }
        let mut got = None;
        for now in 1..200 {
            icnt.tick(now);
            let (mut rx, _) = icnt.partition_ports(5);
            if let Some(r) = rx.recv() {
                got = Some(r);
                break;
            }
        }
        assert_eq!(got, Some(req));
        assert!(icnt.is_idle());
    }

    #[test]
    fn response_port_routes_to_destination_core() {
        let cfg = GpuConfig::fermi().unwrap();
        let mut icnt = Interconnect::new(&cfg, cfg.topology());
        let resp = MemResponse {
            line: LineAddr::new(5),
            kind: AccessKind::Read,
            core: CoreId(7),
            warp: 3,
            victim_hint: true,
            class: None,
        };
        {
            let (_, mut tx) = icnt.partition_ports(5);
            tx.send(resp, 0);
        }
        let mut got = None;
        for now in 1..200 {
            icnt.tick(now);
            let (mut rx, _) = icnt.core_ports(7);
            if let Some(r) = rx.recv() {
                got = Some(r);
                break;
            }
        }
        assert_eq!(got, Some(resp));
    }

    /// Runs the mesh until `recv` yields a packet at its node (or panics).
    fn pump<M, F>(icnt: &mut Interconnect, mut recv: F) -> M
    where
        F: FnMut(&mut Interconnect) -> Option<M>,
    {
        for now in 1..200 {
            icnt.tick(now);
            if let Some(m) = recv(icnt) {
                return m;
            }
        }
        panic!("packet never arrived");
    }

    #[test]
    fn clustered_requests_route_via_cluster_node() {
        let cfg = clustered_cfg(4);
        let mut icnt = Interconnect::new(&cfg, cfg.topology());
        let req = MemRequest {
            line: LineAddr::new(5),
            kind: AccessKind::Read,
            core: CoreId(6), // cluster 1
            warp: 0,
            class: None,
        };
        {
            let (_, mut tx) = icnt.core_ports(6);
            tx.send(req, 0);
        }
        // The request ejects at cluster 1's node, not at partition 5.
        let got = pump(&mut icnt, |icnt| icnt.cluster_io(1).0.recv());
        assert_eq!(got, req);
        // Forwarding from the cluster node reaches the owning partition.
        {
            let (mut req_io, _) = icnt.cluster_io(1);
            assert!(TxPort::can_send(&req_io));
            req_io.send(got, 0);
        }
        let got = pump(&mut icnt, |icnt| icnt.partition_ports(5).0.recv());
        assert_eq!(got, req);
    }

    #[test]
    fn crossbar_carries_core_requests_to_l15() {
        let cfg = clustered_cfg(4).with_cluster_ports(2).unwrap();
        let mut icnt = Interconnect::new(&cfg, cfg.topology());
        let req = MemRequest {
            line: LineAddr::new(5),
            kind: AccessKind::Read,
            core: CoreId(6), // cluster 1
            warp: 0,
            class: None,
        };
        {
            let (_, mut tx) = icnt.core_ports(6);
            assert!(tx.can_send());
            tx.send(req, 0);
        }
        // The request crosses cluster 1's up lane, never the mesh.
        let got = pump(&mut icnt, |icnt| icnt.cluster_io(1).0.recv());
        assert_eq!(got, req);
        assert_eq!(icnt.req_stats().packets, 0, "mesh must not see the request");
        assert_eq!(icnt.xbar_stats().unwrap().grants, 1);
        // Misses still ride the mesh to the owning partition.
        {
            let (mut req_io, _) = icnt.cluster_io(1);
            assert!(TxPort::can_send(&req_io));
            req_io.send(got, 0);
        }
        let got = pump(&mut icnt, |icnt| icnt.partition_ports(5).0.recv());
        assert_eq!(got, req);
        assert_eq!(icnt.req_stats().packets, 1);
    }

    #[test]
    fn crossbar_carries_l15_responses_to_cores() {
        let cfg = clustered_cfg(4).with_cluster_ports(2).unwrap();
        let mut icnt = Interconnect::new(&cfg, cfg.topology());
        let resp = MemResponse {
            line: LineAddr::new(5),
            kind: AccessKind::Read,
            core: CoreId(13), // cluster 3, slot 1
            warp: 2,
            victim_hint: true,
            class: None,
        };
        // Partition responses still ride the mesh to the cluster node.
        {
            let (_, mut tx) = icnt.partition_ports(5);
            tx.send(resp, 0);
        }
        let got = pump(&mut icnt, |icnt| icnt.cluster_io(3).1.recv());
        assert_eq!(got, resp);
        // The per-core redistribution crosses the down lane.
        let before = icnt.resp_stats().packets;
        {
            let (_, mut resp_io) = icnt.cluster_io(3);
            assert!(TxPort::can_send(&resp_io));
            resp_io.send(got, 0);
        }
        assert!(!icnt.resp_pending_core(13));
        let got = pump(&mut icnt, |icnt| icnt.core_ports(13).0.recv());
        assert_eq!(got, resp);
        assert_eq!(
            icnt.resp_stats().packets,
            before,
            "redistribution must not touch the mesh"
        );
        assert!(icnt.is_idle());
    }

    #[test]
    fn one_port_setting_keeps_legacy_mesh_wiring() {
        // cluster_ports = 1 (the default) must not build crossbars: the
        // cluster node's mesh port is the serialization-equivalent model,
        // so pre-crossbar results reproduce bit-identically.
        let cfg = clustered_cfg(4);
        assert_eq!(cfg.cluster_ports, 1);
        let icnt = Interconnect::new(&cfg, cfg.topology());
        assert!(icnt.xbar_stats().is_none());
        assert_eq!(icnt.xbar_ports_total(), 0);
    }

    #[test]
    fn clustered_responses_route_via_cluster_node_then_core() {
        let cfg = clustered_cfg(4);
        let mut icnt = Interconnect::new(&cfg, cfg.topology());
        let resp = MemResponse {
            line: LineAddr::new(5),
            kind: AccessKind::Read,
            core: CoreId(13), // cluster 3
            warp: 2,
            victim_hint: true,
            class: None,
        };
        {
            let (_, mut tx) = icnt.partition_ports(5);
            tx.send(resp, 0);
        }
        let got = pump(&mut icnt, |icnt| icnt.cluster_io(3).1.recv());
        assert_eq!(got, resp);
        {
            let (_, mut resp_io) = icnt.cluster_io(3);
            assert!(TxPort::can_send(&resp_io));
            resp_io.send(got, 0);
        }
        let got = pump(&mut icnt, |icnt| icnt.core_ports(13).0.recv());
        assert_eq!(got, resp);
    }
}
