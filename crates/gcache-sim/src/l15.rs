//! A shared per-cluster L1.5 cache — the "new hierarchy level" the
//! component model exists for (see README, "Adding a new hierarchy
//! level").
//!
//! Like the per-core L1, the L1.5 is a thin adapter over the generic
//! [`CacheController`]: a write-through/no-allocate cache with
//! [`AtomicHandling::Forward`], addressed by *global* line addresses (the
//! partition interleaving is stripped only at the L2 banks). It sits at
//! its cluster's mesh node and talks exclusively through
//! [`RxPort`]/[`TxPort`] views, so the component is testable against fake
//! ports and the cycle loop never changes:
//!
//! * request mesh: core requests eject here; L1.5 misses, stores and
//!   atomics inject onwards to the owning partition;
//! * response mesh: partition responses eject here (fills / atomic
//!   completions); per-core responses inject back to the cores.
//!
//! With [`GpuConfig::cluster_ports`] ≥ 2 the core-facing halves of those
//! port views are backed by the cluster's [`crate::xbar::ClusterXbar`]
//! lanes instead of the mesh (partition traffic always rides the mesh);
//! the component itself is wiring-agnostic and never knows which.
//!
//! The L2's victim hint passes through unchanged on fills: the forwarded
//! miss carries the primary requester's core id, the L2 observes that
//! core's victim bit, and every core the fill releases receives the same
//! hint — faithful to the clustered sharing model of §4.3, where one
//! victim bit serves the whole cluster. L1.5 hits themselves carry no
//! hint (the level keeps no victim bits of its own).

use crate::config::GpuConfig;
use crate::port::{RxPort, TxPort};
use crate::request::{MemRequest, MemResponse, WarpSlot};
use gcache_core::addr::CoreId;
use gcache_core::cache::{Cache, CacheConfig};
use gcache_core::controller::{AtomicHandling, CacheController, ControllerOutcome, FillParams};
use gcache_core::policy::lru::Lru;
use gcache_core::policy::AccessKind;
use gcache_core::snapshot::{
    Snapshot, SnapshotError, SnapshotPayload, SnapshotReader, SnapshotWriter,
};
use gcache_core::stats::CacheStats;
use gcache_core::trace::{SharedTraceRing, TraceLevel, TraceSource};
use std::collections::VecDeque;

/// A merged requester waiting on one L1.5 miss.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct L15Target {
    core: CoreId,
    warp: WarpSlot,
}

impl SnapshotPayload for L15Target {
    fn save_payload(&self, w: &mut SnapshotWriter) {
        w.usize(self.core.index());
        w.usize(self.warp);
    }

    fn restore_payload(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(L15Target {
            core: CoreId(r.usize()?),
            warp: r.usize()?,
        })
    }
}

/// One cluster's shared L1.5 cache.
#[derive(Debug)]
pub struct L15Cluster {
    ctrl: CacheController<L15Target>,
    /// Requests ejected from the request mesh, awaiting service.
    incoming: VecDeque<MemRequest>,
    /// Misses/stores/atomics to forward towards the partitions.
    forward: VecDeque<MemRequest>,
    /// Responses ready to inject into the response mesh at `ready_at`.
    outgoing: VecDeque<(MemResponse, u64)>,
    /// Scratch for fill targets — reused so the steady-state fill path
    /// performs no heap allocation.
    target_scratch: Vec<L15Target>,
    latency: u64,
    /// Cycles the head-of-line request was parked on MSHR resources.
    stall_cycles: u64,
}

impl L15Cluster {
    /// Builds one shared L1.5 from the configured [`Hierarchy`]
    /// (`cfg.hierarchy` must be `SharedL15`). The MSHR file reuses the
    /// per-core L1 sizing — the level in front of it already rate-limits
    /// each core to one request per cycle.
    ///
    /// [`Hierarchy`]: crate::config::Hierarchy
    pub fn new(cfg: &GpuConfig) -> Self {
        let geom = cfg
            .l15_geometry()
            .expect("L15Cluster requires a SharedL15 hierarchy");
        let cache = Cache::new(CacheConfig::l1(geom, 0), Lru::new(&geom));
        L15Cluster {
            ctrl: CacheController::new(
                cache,
                cfg.l1_mshr_entries,
                cfg.l1_mshr_merge,
                AtomicHandling::Forward,
            ),
            incoming: VecDeque::new(),
            forward: VecDeque::new(),
            outgoing: VecDeque::new(),
            target_scratch: Vec::with_capacity(cfg.l1_mshr_merge),
            latency: cfg.l15_latency,
            stall_cycles: 0,
        }
    }

    /// L1.5 cache statistics.
    pub fn stats(&self) -> &CacheStats {
        self.ctrl.stats()
    }

    /// Cycles the head-of-line request was parked on MSHR resources.
    pub const fn stall_cycles(&self) -> u64 {
        self.stall_cycles
    }

    /// Direct access to the cache (kernel-end flush, tests).
    pub fn cache_mut(&mut self) -> &mut Cache {
        self.ctrl.cache_mut()
    }

    /// Read access to the cache (telemetry inspection).
    pub fn cache(&self) -> &Cache {
        self.ctrl.cache()
    }

    /// Highest MSHR occupancy seen so far (telemetry gauge).
    pub fn mshr_peak(&self) -> usize {
        self.ctrl.mshr().peak_occupancy()
    }

    /// Attaches a shared event-trace ring to this cluster cache (fill
    /// events plus MSHR allocate/release events), tagged `L1.5#<cluster>`.
    pub fn set_trace(&mut self, cluster: usize, ring: &SharedTraceRing) {
        let src = TraceSource::new(TraceLevel::L15, cluster as u16);
        self.ctrl.set_trace(src, ring.sink());
        self.ctrl.cache_mut().set_trace(src, ring.sink());
    }

    /// Whether everything has drained: no queued traffic in either
    /// direction and no outstanding misses.
    pub fn is_idle(&self) -> bool {
        self.incoming.is_empty()
            && self.forward.is_empty()
            && self.outgoing.is_empty()
            && self.ctrl.quiesced()
    }

    /// A lower bound on the cluster's next state-changing cycle (`None` =
    /// nothing internal pending; outstanding fills arrive through the
    /// response mesh, whose own `next_event` bounds them). Queued traffic
    /// pins the bound to the next cycle — a stalled head-of-line request
    /// mutates stall statistics there, so those cycles must be ticked.
    pub fn next_event(&self, now: u64) -> Option<u64> {
        let mut ev: Option<u64> = None;
        let mut fold = |t: u64| ev = Some(ev.map_or(t, |e: u64| e.min(t)));
        if let Some(&(_, ready)) = self.outgoing.front() {
            fold(ready.max(now + 1));
        }
        if !self.incoming.is_empty() || !self.forward.is_empty() {
            fold(now + 1);
        }
        ev
    }

    /// One L1.5 cycle against its two mesh views: drain both ejection
    /// sides, serve at most one request, then inject while there is room.
    /// Generic over the port views so the component tests drive it with
    /// plain queue fakes.
    pub fn tick<RQ, RS>(&mut self, now: u64, req_io: &mut RQ, resp_io: &mut RS)
    where
        RQ: RxPort<MemRequest> + TxPort<MemRequest>,
        RS: RxPort<MemResponse> + TxPort<MemResponse>,
    {
        while let Some(resp) = resp_io.recv() {
            self.on_response(resp, now);
        }
        while let Some(req) = req_io.recv() {
            self.incoming.push_back(req);
        }
        self.serve_one(now);
        while TxPort::can_send(req_io) {
            let Some(&req) = self.forward.front() else {
                break;
            };
            req_io.send(req, now);
            self.forward.pop_front();
        }
        while TxPort::can_send(resp_io) {
            let Some(resp) = self.pop_response(now) else {
                break;
            };
            resp_io.send(resp, now);
        }
    }

    /// Applies one returning partition response: read fills release their
    /// merged targets (each receiving the L2's victim hint unchanged),
    /// atomic completions pass straight through to the requesting core.
    fn on_response(&mut self, resp: MemResponse, now: u64) {
        match resp.kind {
            AccessKind::Read => {
                let mut targets = std::mem::take(&mut self.target_scratch);
                self.ctrl
                    .fill_with(resp.line, &mut targets, |_| FillParams {
                        core: resp.core,
                        victim_hint: resp.victim_hint,
                        dirty: false,
                        class: resp.class,
                    });
                for t in &targets {
                    self.outgoing.push_back((
                        MemResponse {
                            core: t.core,
                            warp: t.warp,
                            ..resp
                        },
                        now,
                    ));
                }
                targets.clear();
                self.target_scratch = targets;
            }
            AccessKind::Atomic => self.outgoing.push_back((resp, now)),
            AccessKind::Write | AccessKind::CopyBack => {
                unreachable!("stores and copy-backs are fire-and-forget")
            }
        }
    }

    /// Serves at most one incoming request per cycle. The MSHR resource
    /// check precedes the committed access (as in the partitions) so a
    /// stalled head-of-line request does not perturb statistics or policy
    /// ageing while it waits.
    fn serve_one(&mut self, now: u64) {
        let Some(&req) = self.incoming.front() else {
            return;
        };
        if req.kind == AccessKind::CopyBack {
            // Clean copy-backs are maintenance traffic destined for the
            // L2: they pass straight through without touching the L1.5
            // lookup path (no hit/miss accounting, no policy ageing).
            self.forward.push_back(req);
            self.incoming.pop_front();
            return;
        }
        if self.ctrl.would_block(req.line, req.kind) {
            self.stall_cycles += 1;
            return;
        }
        let target = L15Target {
            core: req.core,
            warp: req.warp,
        };
        match self.ctrl.access(req.line, req.kind, req.core, target) {
            ControllerOutcome::Blocked(_) => unreachable!("gated by would_block"),
            // Forward the original request: the L2 sees the primary
            // requester's core id, so its victim bits observe real cores.
            ControllerOutcome::MissPrimary | ControllerOutcome::Forward => {
                self.forward.push_back(req);
            }
            ControllerOutcome::MissMerged => {}
            ControllerOutcome::Hit { .. } => {
                // Only reads reach the hit path under write-through/
                // forward-atomics. An L1.5 hit never carries a hint: the
                // level keeps no victim bits (hints ride fills instead).
                self.outgoing.push_back((
                    MemResponse {
                        line: req.line,
                        kind: AccessKind::Read,
                        core: req.core,
                        warp: req.warp,
                        victim_hint: false,
                        class: req.class,
                    },
                    now + self.latency,
                ));
            }
        }
        self.incoming.pop_front();
    }

    /// Takes one response whose pipeline latency has elapsed.
    fn pop_response(&mut self, now: u64) -> Option<MemResponse> {
        match self.outgoing.front() {
            Some((_, ready)) if *ready <= now => self.outgoing.pop_front().map(|(r, _)| r),
            _ => None,
        }
    }
}

impl Snapshot for L15Cluster {
    /// Saves the controller (cache + MSHRs), the three traffic queues and
    /// the stall counter. `latency` is configuration and `target_scratch`
    /// is reusable scratch — neither is serialized.
    fn save(&self, w: &mut SnapshotWriter) {
        w.section("l15", |w| {
            self.ctrl.save(w);
            w.usize(self.incoming.len());
            for req in &self.incoming {
                req.save_payload(w);
            }
            w.usize(self.forward.len());
            for req in &self.forward {
                req.save_payload(w);
            }
            w.usize(self.outgoing.len());
            for (resp, ready) in &self.outgoing {
                resp.save_payload(w);
                w.u64(*ready);
            }
            w.u64(self.stall_cycles);
        });
    }

    fn restore(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        r.section("l15", |r| {
            self.ctrl.restore(r)?;
            let n = r.usize()?;
            self.incoming.clear();
            for _ in 0..n {
                self.incoming.push_back(MemRequest::restore_payload(r)?);
            }
            let n = r.usize()?;
            self.forward.clear();
            for _ in 0..n {
                self.forward.push_back(MemRequest::restore_payload(r)?);
            }
            let n = r.usize()?;
            self.outgoing.clear();
            for _ in 0..n {
                let resp = MemResponse::restore_payload(r)?;
                let ready = r.u64()?;
                self.outgoing.push_back((resp, ready));
            }
            self.stall_cycles = r.u64()?;
            Ok(())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Hierarchy;
    use gcache_core::addr::LineAddr;

    /// Queue-backed fake of a mesh port pair: `to_l15` is what the mesh
    /// would deliver, `from_l15` collects injections.
    struct FakeIo<M> {
        to_l15: VecDeque<M>,
        from_l15: Vec<M>,
        blocked: bool,
    }

    impl<M> Default for FakeIo<M> {
        fn default() -> Self {
            FakeIo {
                to_l15: VecDeque::new(),
                from_l15: Vec::new(),
                blocked: false,
            }
        }
    }

    impl<M> RxPort<M> for FakeIo<M> {
        fn recv(&mut self) -> Option<M> {
            self.to_l15.pop_front()
        }
    }

    impl<M> TxPort<M> for FakeIo<M> {
        fn can_send(&self) -> bool {
            !self.blocked
        }

        fn send(&mut self, msg: M, _now: u64) {
            self.from_l15.push(msg);
        }
    }

    fn cluster() -> L15Cluster {
        let cfg = GpuConfig::fermi()
            .unwrap()
            .with_hierarchy(Hierarchy::SharedL15 {
                cluster_size: 4,
                kb: 64,
            })
            .unwrap();
        L15Cluster::new(&cfg)
    }

    fn read(line: u64, core: usize, warp: WarpSlot) -> MemRequest {
        MemRequest {
            line: LineAddr::new(line),
            kind: AccessKind::Read,
            core: CoreId(core),
            warp,
            class: None,
        }
    }

    fn io() -> (FakeIo<MemRequest>, FakeIo<MemResponse>) {
        (FakeIo::default(), FakeIo::default())
    }

    #[test]
    fn miss_forwards_then_fill_releases_and_later_reads_hit() {
        let mut l15 = cluster();
        let (mut rq, mut rs) = io();
        rq.to_l15.push_back(read(5, 0, 7));
        l15.tick(0, &mut rq, &mut rs);
        assert_eq!(
            rq.from_l15,
            vec![read(5, 0, 7)],
            "primary miss must forward"
        );
        assert!(rs.from_l15.is_empty());

        // A second core merges while the miss is outstanding.
        rq.to_l15.push_back(read(5, 2, 3));
        l15.tick(1, &mut rq, &mut rs);
        assert_eq!(rq.from_l15.len(), 1, "merged miss must not forward");

        // The fill releases both targets with the L2's hint attached.
        rs.to_l15.push_back(MemResponse {
            line: LineAddr::new(5),
            kind: AccessKind::Read,
            core: CoreId(0),
            warp: 7,
            victim_hint: true,
            class: None,
        });
        l15.tick(2, &mut rq, &mut rs);
        assert_eq!(rs.from_l15.len(), 2);
        assert_eq!(
            rs.from_l15
                .iter()
                .map(|r| (r.core, r.warp, r.victim_hint))
                .collect::<Vec<_>>(),
            vec![(CoreId(0), 7, true), (CoreId(2), 3, true)],
            "both cores get the fill's hint, in allocation order"
        );

        // A later read hits after the pipeline latency, without a hint.
        rq.to_l15.push_back(read(5, 1, 9));
        let t = 10;
        l15.tick(t, &mut rq, &mut rs);
        assert_eq!(rq.from_l15.len(), 1, "hit must not forward");
        assert_eq!(rs.from_l15.len(), 2, "hit response waits out the latency");
        let mut served_at = None;
        for now in t + 1..t + 40 {
            l15.tick(now, &mut rq, &mut rs);
            if rs.from_l15.len() == 3 {
                served_at = Some(now);
                break;
            }
        }
        assert_eq!(served_at, Some(t + 12), "fermi l15_latency is 12");
        assert!(!rs.from_l15[2].victim_hint);
        assert_eq!(l15.stats().hits(), 1);
        assert!(l15.is_idle());
    }

    #[test]
    fn stores_and_atomics_pass_through() {
        let mut l15 = cluster();
        let (mut rq, mut rs) = io();
        let write = MemRequest {
            line: LineAddr::new(8),
            kind: AccessKind::Write,
            core: CoreId(1),
            warp: 0,
            class: None,
        };
        let atomic = MemRequest {
            kind: AccessKind::Atomic,
            warp: 4,
            ..write
        };
        rq.to_l15.push_back(write);
        l15.tick(0, &mut rq, &mut rs);
        rq.to_l15.push_back(atomic);
        l15.tick(1, &mut rq, &mut rs);
        assert_eq!(rq.from_l15, vec![write, atomic]);
        // The atomic's completion passes straight through to the core.
        rs.to_l15.push_back(MemResponse {
            line: atomic.line,
            kind: AccessKind::Atomic,
            core: atomic.core,
            warp: atomic.warp,
            victim_hint: false,
            class: None,
        });
        l15.tick(2, &mut rq, &mut rs);
        assert_eq!(rs.from_l15.len(), 1);
        assert_eq!(rs.from_l15[0].kind, AccessKind::Atomic);
        assert!(l15.is_idle());
    }

    #[test]
    fn backpressure_holds_forwards_and_pins_next_event() {
        let mut l15 = cluster();
        let (mut rq, mut rs) = io();
        rq.blocked = true;
        rq.to_l15.push_back(read(5, 0, 0));
        l15.tick(0, &mut rq, &mut rs);
        assert!(rq.from_l15.is_empty(), "blocked port must hold the forward");
        assert_eq!(l15.next_event(0), Some(1), "held forward pins the bound");
        assert!(!l15.is_idle());
        rq.blocked = false;
        l15.tick(1, &mut rq, &mut rs);
        assert_eq!(rq.from_l15.len(), 1);
    }

    #[test]
    fn quiet_cluster_reports_no_internal_event() {
        let l15 = cluster();
        assert_eq!(l15.next_event(0), None);
        assert!(l15.is_idle());
    }
}
