//! The common clocking contract of every simulated component.
//!
//! The GPU's cycle loop no longer hard-codes its topology as control flow:
//! each hardware block implements [`Clocked`] (self-contained components:
//! meshes, partitions, DRAM channels) or [`ClockedWith`] (components that
//! exchange messages through ports on each tick: the core array and the
//! memory system, both talking to the interconnect), and the
//! [`crate::gpu::Gpu`] driver just ticks them in pipeline order. The
//! [`Watchdog`] factors out the forward-progress check that guards the
//! loop against protocol deadlocks.
//!
//! # Idle-cycle fast-forward
//!
//! Both traits carry a `next_event` hook: a **lower bound** on the
//! earliest cycle strictly after `now` at which ticking the component
//! could change any observable state — statistics included — assuming no
//! external input arrives in between. The driver jumps the global clock
//! to the minimum bound across components instead of ticking cycle by
//! cycle, and calls `skip` so per-cycle stall accounting is replayed in
//! bulk. Undershooting a bound merely costs no-op ticks; *overshooting
//! would change simulated results*, so when in doubt an implementation
//! must return `Some(now + 1)` (the default), which simply disables
//! fast-forward for that component.

/// A self-contained component advanced one core cycle at a time.
pub trait Clocked {
    /// Advances the component to cycle `now`. Called exactly once per
    /// simulated core cycle, with `now` strictly increasing — except on
    /// cycles the driver proved event-free via [`Clocked::next_event`],
    /// which may be skipped entirely (see [`Clocked::skip`]).
    fn tick(&mut self, now: u64);

    /// Whether all internal work has drained (used for the end-of-kernel
    /// barrier: the GPU stops when every component is idle).
    fn is_idle(&self) -> bool;

    /// A lower bound on the earliest cycle `> now` at which ticking this
    /// component could change any observable state (statistics included),
    /// given no external input; `None` means fully drained — nothing will
    /// ever happen again without input. The conservative default returns
    /// `Some(now + 1)`: never skip.
    fn next_event(&self, now: u64) -> Option<u64> {
        Some(now + 1)
    }

    /// Accounts for `cycles` skipped cycles (`now + 1 ..= now + cycles`)
    /// that the driver proved event-free for *every* component:
    /// bulk-advances any per-cycle counters this component would have
    /// incremented had it been ticked. The default does nothing — correct
    /// for components whose event-free ticks are pure no-ops.
    fn skip(&mut self, now: u64, cycles: u64) {
        let _ = (now, cycles);
    }
}

/// A component that exchanges messages with its neighbours through a port
/// bundle `P` while ticking — e.g. the SIMT core array draining response
/// ports and feeding request ports of the interconnect.
pub trait ClockedWith<P: ?Sized> {
    /// Advances the component to cycle `now`, receiving and sending
    /// through `ports`.
    fn tick_with(&mut self, now: u64, ports: &mut P);

    /// Whether all internal work has drained.
    fn is_idle(&self) -> bool;

    /// [`Clocked::next_event`], with read-only port visibility: the bound
    /// may depend on port state (e.g. whether the network can accept an
    /// injection), which is constant across an event-free gap.
    fn next_event(&self, now: u64, ports: &P) -> Option<u64> {
        let _ = ports;
        Some(now + 1)
    }

    /// [`Clocked::skip`], with read-only port visibility.
    fn skip(&mut self, now: u64, cycles: u64, ports: &P) {
        let _ = (now, cycles, ports);
    }
}

/// The minimum of two event bounds, treating `None` as "drained".
pub fn min_event(a: Option<u64>, b: Option<u64>) -> Option<u64> {
    match (a, b) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (x, y) => x.or(y),
    }
}

/// Detects stalled simulations: samples a progress signature every
/// `interval` cycles and reports a deadlock once the signature has not
/// changed for more than `patience` cycles.
#[derive(Debug)]
pub struct Watchdog<S> {
    interval: u64,
    patience: u64,
    last_progress_cycle: u64,
    last_sig: S,
}

impl<S: PartialEq> Watchdog<S> {
    /// Creates a watchdog sampling every `interval` cycles, declaring a
    /// deadlock after `patience` cycles without change. `now` and `sig`
    /// seed the baseline.
    pub fn new(interval: u64, patience: u64, now: u64, sig: S) -> Self {
        assert!(interval > 0, "watchdog interval must be positive");
        Watchdog {
            interval,
            patience,
            last_progress_cycle: now,
            last_sig: sig,
        }
    }

    /// The first sampling cycle strictly after `now`. A fast-forwarding
    /// driver must not jump past it: skipping non-sample cycles is exact
    /// ([`Watchdog::observe`] is a no-op on them), but deadlocks must be
    /// detected on the same schedule as cycle-by-cycle execution.
    pub fn next_sample(&self, now: u64) -> u64 {
        (now / self.interval + 1) * self.interval
    }

    /// The cycle at which progress was last observed and the signature
    /// seen then — together with the construction parameters, the
    /// watchdog's whole mutable state. A checkpoint records the pair and
    /// resume rebuilds the watchdog via [`Watchdog::new`] with them, so a
    /// restored run detects deadlocks on the same schedule as an
    /// uninterrupted one.
    pub fn last_progress(&self) -> (u64, &S) {
        (self.last_progress_cycle, &self.last_sig)
    }

    /// Samples progress at cycle `now`. `sig` is only evaluated on sample
    /// cycles (multiples of the interval). Returns `true` when the
    /// signature has been stuck past the patience window — a deadlock.
    pub fn observe(&mut self, now: u64, sig: impl FnOnce() -> S) -> bool {
        if !now.is_multiple_of(self.interval) {
            return false;
        }
        let sig = sig();
        if sig == self.last_sig {
            now - self.last_progress_cycle > self.patience
        } else {
            self.last_sig = sig;
            self.last_progress_cycle = now;
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watchdog_fires_only_after_patience() {
        let mut w = Watchdog::new(4, 10, 0, 0u64);
        for now in 1..=10 {
            assert!(!w.observe(now, || 0), "within patience at {now}");
        }
        // Cycle 12 is a sample point with now - 0 = 12 > 10.
        assert!(!w.observe(11, || 0), "not a sample cycle");
        assert!(w.observe(12, || 0));
    }

    #[test]
    fn watchdog_resets_on_progress() {
        let mut w = Watchdog::new(4, 10, 0, 0u64);
        assert!(!w.observe(8, || 1), "signature changed");
        for now in 9..=18 {
            assert!(!w.observe(now, || 1), "within renewed patience at {now}");
        }
        assert!(w.observe(20, || 1));
    }

    #[test]
    fn min_event_treats_none_as_no_event() {
        assert_eq!(min_event(Some(3), Some(7)), Some(3));
        assert_eq!(min_event(Some(5), None), Some(5));
        assert_eq!(min_event(None, Some(9)), Some(9));
        assert_eq!(min_event(None, None), None);
    }

    #[test]
    fn next_sample_lands_on_the_observation_grid() {
        let w = Watchdog::new(4096, 10, 0, 0u64);
        assert_eq!(w.next_sample(0), 4096);
        assert_eq!(w.next_sample(1), 4096);
        assert_eq!(w.next_sample(4095), 4096);
        // A sample cycle's next sample is the following one, never itself.
        assert_eq!(w.next_sample(4096), 8192);
    }

    #[test]
    fn signature_closure_runs_only_on_sample_cycles() {
        let mut w = Watchdog::new(4096, 10, 0, 0u64);
        let mut evaluated = false;
        // 17 is not a multiple of 4096: the closure must not run.
        assert!(!w.observe(17, || {
            evaluated = true;
            0
        }));
        assert!(!evaluated, "signature must not be computed off-sample");
    }
}
