//! The common clocking contract of every simulated component.
//!
//! The GPU's cycle loop no longer hard-codes its topology as control flow:
//! each hardware block implements [`Clocked`] (self-contained components:
//! meshes, partitions, DRAM channels) or [`ClockedWith`] (components that
//! exchange messages through ports on each tick: the core array and the
//! memory system, both talking to the interconnect), and the
//! [`crate::gpu::Gpu`] driver just ticks them in pipeline order. The
//! [`Watchdog`] factors out the forward-progress check that guards the
//! loop against protocol deadlocks.

/// A self-contained component advanced one core cycle at a time.
pub trait Clocked {
    /// Advances the component to cycle `now`. Called exactly once per
    /// simulated core cycle, with `now` strictly increasing.
    fn tick(&mut self, now: u64);

    /// Whether all internal work has drained (used for the end-of-kernel
    /// barrier: the GPU stops when every component is idle).
    fn is_idle(&self) -> bool;
}

/// A component that exchanges messages with its neighbours through a port
/// bundle `P` while ticking — e.g. the SIMT core array draining response
/// ports and feeding request ports of the interconnect.
pub trait ClockedWith<P: ?Sized> {
    /// Advances the component to cycle `now`, receiving and sending
    /// through `ports`.
    fn tick_with(&mut self, now: u64, ports: &mut P);

    /// Whether all internal work has drained.
    fn is_idle(&self) -> bool;
}

/// Detects stalled simulations: samples a progress signature every
/// `interval` cycles and reports a deadlock once the signature has not
/// changed for more than `patience` cycles.
#[derive(Debug)]
pub struct Watchdog<S> {
    interval: u64,
    patience: u64,
    last_progress_cycle: u64,
    last_sig: S,
}

impl<S: PartialEq> Watchdog<S> {
    /// Creates a watchdog sampling every `interval` cycles, declaring a
    /// deadlock after `patience` cycles without change. `now` and `sig`
    /// seed the baseline.
    pub fn new(interval: u64, patience: u64, now: u64, sig: S) -> Self {
        assert!(interval > 0, "watchdog interval must be positive");
        Watchdog { interval, patience, last_progress_cycle: now, last_sig: sig }
    }

    /// Samples progress at cycle `now`. `sig` is only evaluated on sample
    /// cycles (multiples of the interval). Returns `true` when the
    /// signature has been stuck past the patience window — a deadlock.
    pub fn observe(&mut self, now: u64, sig: impl FnOnce() -> S) -> bool {
        if !now.is_multiple_of(self.interval) {
            return false;
        }
        let sig = sig();
        if sig == self.last_sig {
            now - self.last_progress_cycle > self.patience
        } else {
            self.last_sig = sig;
            self.last_progress_cycle = now;
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watchdog_fires_only_after_patience() {
        let mut w = Watchdog::new(4, 10, 0, 0u64);
        for now in 1..=10 {
            assert!(!w.observe(now, || 0), "within patience at {now}");
        }
        // Cycle 12 is a sample point with now - 0 = 12 > 10.
        assert!(!w.observe(11, || 0), "not a sample cycle");
        assert!(w.observe(12, || 0));
    }

    #[test]
    fn watchdog_resets_on_progress() {
        let mut w = Watchdog::new(4, 10, 0, 0u64);
        assert!(!w.observe(8, || 1), "signature changed");
        for now in 9..=18 {
            assert!(!w.observe(now, || 1), "within renewed patience at {now}");
        }
        assert!(w.observe(20, || 1));
    }

    #[test]
    fn signature_closure_runs_only_on_sample_cycles() {
        let mut w = Watchdog::new(4096, 10, 0, 0u64);
        let mut evaluated = false;
        // 17 is not a multiple of 4096: the closure must not run.
        assert!(!w.observe(17, || {
            evaluated = true;
            0
        }));
        assert!(!evaluated, "signature must not be computed off-sample");
    }
}
