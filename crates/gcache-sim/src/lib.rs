//! # gcache-sim
//!
//! A cycle-level many-core-accelerator (GPU) timing simulator built from
//! scratch for the G-Cache reproduction (Chen et al., MES '14). It models
//! the full memory system of the paper's Figure 1 / Table 2:
//!
//! * **SIMT cores** — warp contexts, LRR/GTO warp schedulers, CTA barrier
//!   semantics, an LD/ST unit with a coalescing stage;
//! * **L1 memory** — per-core write-through/no-allocate data caches with
//!   MSHRs and any [`gcache_core`] management policy (LRU, SRRIP, G-Cache,
//!   PDP);
//! * **interconnect** — separate request/response 2D meshes with XY
//!   routing, bounded router queues and 32 B-channel serialisation;
//! * **memory partitions** — write-back/write-allocate L2 banks carrying
//!   the G-Cache victim-bit extension, atomic-operation units, and
//!   FR-FCFS GDDR5 DRAM channels.
//!
//! Kernels are *abstract instruction streams* ([`isa::Kernel`] /
//! [`isa::WarpProgram`]); see the `gcache-workloads` crate for generators
//! reproducing the paper's 17 benchmarks.
//!
//! ## Quick start
//!
//! ```
//! use gcache_sim::config::{GpuConfig, L1PolicyKind};
//! use gcache_sim::gpu::Gpu;
//! use gcache_sim::isa::{GridDim, Kernel, Op, TraceProgram, WarpProgram};
//! use gcache_core::addr::Addr;
//! use gcache_core::policy::gcache::GCacheConfig;
//!
//! struct Stream;
//! impl Kernel for Stream {
//!     fn name(&self) -> &str { "stream" }
//!     fn grid(&self) -> GridDim { GridDim { ctas: 4, threads_per_cta: 64 } }
//!     fn warp_program(&self, cta: usize, warp: usize) -> Box<dyn WarpProgram> {
//!         let tid = cta * 2 + warp;
//!         Box::new(TraceProgram::new(
//!             (0..8).map(|i| Op::strided_load(Addr::new(((tid * 8 + i) * 128) as u64), 4, 32)).collect(),
//!         ))
//!     }
//! }
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = GpuConfig::fermi_with_policy(L1PolicyKind::GCache(GCacheConfig::default()))?;
//! let stats = Gpu::new(cfg).run_kernel(&Stream)?;
//! println!("{stats}");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod clocked;
pub mod coalescer;
pub mod config;
pub mod core;
pub mod dram;
pub mod energy;
pub mod gpu;
pub mod icnt;
pub mod isa;
pub mod l1;
pub mod l15;
pub mod partition;
pub mod port;
pub mod request;
pub mod scheduler;
pub mod stats;
pub mod system;
pub mod telemetry;
pub mod xbar;

/// Commonly used items, re-exported for glob import.
pub mod prelude {
    pub use crate::clocked::{Clocked, ClockedWith, Watchdog};
    pub use crate::config::{DramTiming, GpuConfig, L1PolicyKind, WarpSchedKind};
    pub use crate::energy::{EnergyBreakdown, EnergyModel};
    pub use crate::gpu::{Gpu, SimError};
    pub use crate::isa::{GridDim, Kernel, Op, TraceProgram, WarpProgram};
    pub use crate::port::{RxPort, TxPort};
    pub use crate::stats::{geomean, SimStats};
    pub use crate::system::{ClusterComplex, CoreComplex, Interconnect, MemorySystem, Topology};
    pub use crate::telemetry::{Profile, Sample, Sampler, TelemetrySnapshot};
    pub use crate::xbar::{ClusterXbar, XbarStats};
}
