//! A memory partition: one L2 cache bank (write-back, write-allocate, with
//! the G-Cache victim-bit extension), one Atomic Operation Unit, and one
//! FR-FCFS GDDR5 memory controller (§2.2, Figure 1).
//!
//! The L2 bank is a thin adapter over the generic
//! [`CacheController`] — the same miss-handling machine the L1 uses, here
//! wrapped around a write-back/allocate cache with victim bits and
//! [`AtomicHandling::Execute`]. The partition keeps only what is genuinely
//! partition-level: DRAM admission gating, response scheduling, and the
//! AOU serialisation.
//!
//! The L2 runs at half the core clock (700 MHz vs 1.4 GHz); the caller
//! gates [`Partition::tick`]'s L2 work accordingly via `l2_period` while
//! the DRAM ticks every core cycle.

use crate::clocked::Clocked;
use crate::config::GpuConfig;
use crate::dram::Dram;
use crate::request::{
    partition_local_line, restore_request_class, save_request_class, MemRequest, MemResponse,
    WarpSlot,
};
use gcache_core::addr::{CoreId, LineAddr, PartitionId};
use gcache_core::cache::{Cache, CacheConfig};
use gcache_core::controller::{AtomicHandling, CacheController, ControllerOutcome, FillParams};
use gcache_core::policy::lru::Lru;
use gcache_core::policy::{AccessCtx, AccessKind, RequestClass};
use gcache_core::snapshot::{
    Snapshot, SnapshotError, SnapshotPayload, SnapshotReader, SnapshotWriter,
};
use gcache_core::stats::CacheStats;
use std::collections::VecDeque;

/// A merged requester waiting on one L2 miss.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum L2Target {
    /// A load from `core`, waking `warp` — needs a response with data.
    /// `class` is the requester's declared [`RequestClass`], echoed back
    /// on the response so the L1 fill decision sees it.
    Read {
        core: CoreId,
        warp: WarpSlot,
        class: Option<RequestClass>,
    },
    /// An atomic from `core` — needs a response after AOU service.
    Atomic { core: CoreId, warp: WarpSlot },
    /// A write-allocate fetch — dirties the fill, no response.
    Write,
}

/// DRAM completion token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum DramToken {
    /// Fetch completing for a partition-local line: fill the L2.
    Fill(LineAddr),
    /// A write-back finished; no further action.
    Writeback,
}

impl SnapshotPayload for L2Target {
    fn save_payload(&self, w: &mut SnapshotWriter) {
        match self {
            L2Target::Read { core, warp, class } => {
                w.u8(0);
                w.usize(core.index());
                w.usize(*warp);
                save_request_class(w, *class);
            }
            L2Target::Atomic { core, warp } => {
                w.u8(1);
                w.usize(core.index());
                w.usize(*warp);
            }
            L2Target::Write => w.u8(2),
        }
    }

    fn restore_payload(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        match r.u8()? {
            0 => Ok(L2Target::Read {
                core: CoreId(r.usize()?),
                warp: r.usize()?,
                class: restore_request_class(r)?,
            }),
            1 => Ok(L2Target::Atomic {
                core: CoreId(r.usize()?),
                warp: r.usize()?,
            }),
            2 => Ok(L2Target::Write),
            v => Err(SnapshotError::BadValue {
                what: "L2 target kind".to_string(),
                value: v as u64,
            }),
        }
    }
}

impl SnapshotPayload for DramToken {
    fn save_payload(&self, w: &mut SnapshotWriter) {
        match self {
            DramToken::Fill(line) => {
                w.u8(0);
                w.u64(line.raw());
            }
            DramToken::Writeback => w.u8(1),
        }
    }

    fn restore_payload(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        match r.u8()? {
            0 => Ok(DramToken::Fill(LineAddr::new(r.u64()?))),
            1 => Ok(DramToken::Writeback),
            v => Err(SnapshotError::BadValue {
                what: "DRAM token kind".to_string(),
                value: v as u64,
            }),
        }
    }
}

/// Partition-level counters beyond the embedded cache/DRAM stats.
#[derive(Clone, Copy, Debug, Default)]
pub struct PartitionStats {
    /// Atomic operations serviced by the AOU.
    pub atomics: u64,
    /// Requests stalled because the L2 MSHR or DRAM queue was full.
    pub stall_cycles: u64,
}

/// One memory partition.
#[derive(Debug)]
pub struct Partition {
    id: PartitionId,
    partitions: usize,
    l2: CacheController<L2Target>,
    dram: Dram<DramToken>,
    /// Requests ejected from the request mesh, awaiting L2 service.
    incoming: VecDeque<MemRequest>,
    /// Responses ready to inject into the response mesh at `ready_at`.
    outgoing: VecDeque<(MemResponse, u64)>,
    /// Scratch for fill targets — reused across DRAM completions so the
    /// steady-state fill path performs no heap allocation.
    target_scratch: Vec<L2Target>,
    l2_period: u64,
    l2_latency: u64,
    atomic_latency: u64,
    aou_busy_until: u64,
    stats: PartitionStats,
}

impl Partition {
    /// Builds the partition described by `cfg`.
    pub fn new(id: PartitionId, cfg: &GpuConfig) -> Self {
        let mut dram = Dram::new(
            cfg.dram_timing,
            cfg.dram_banks,
            cfg.dram_row_bytes,
            cfg.dram_queue,
            cfg.line_size(),
        );
        dram.set_event_gating(cfg.fast_forward);
        // The core→group map comes from the topology, so on a clustered
        // machine victim bits follow the cluster layout (§4.3) instead of
        // bare core-index arithmetic.
        let l2_cache = Cache::with_victim_grouping(
            CacheConfig::l2(cfg.l2_geometry, 0),
            Lru::new(&cfg.l2_geometry),
            cfg.topology().victim_grouping(cfg.victim_bit_share),
        );
        Partition {
            id,
            partitions: cfg.partitions,
            l2: CacheController::new(
                l2_cache,
                cfg.l2_mshr_entries,
                cfg.l2_mshr_merge,
                AtomicHandling::Execute,
            ),
            dram,
            incoming: VecDeque::new(),
            outgoing: VecDeque::new(),
            target_scratch: Vec::with_capacity(cfg.l2_mshr_merge),
            l2_period: cfg.l2_period,
            l2_latency: cfg.l2_latency,
            atomic_latency: cfg.atomic_latency,
            aou_busy_until: 0,
            stats: PartitionStats::default(),
        }
    }

    /// This partition's id.
    pub const fn id(&self) -> PartitionId {
        self.id
    }

    /// L2 bank statistics.
    pub fn l2_stats(&self) -> &CacheStats {
        self.l2.stats()
    }

    /// DRAM channel statistics.
    pub fn dram_stats(&self) -> &crate::dram::DramStats {
        self.dram.stats()
    }

    /// Partition-level counters.
    pub const fn stats(&self) -> &PartitionStats {
        &self.stats
    }

    /// Direct access to the L2 (kernel-end flush, tests).
    pub fn l2_mut(&mut self) -> &mut Cache {
        self.l2.cache_mut()
    }

    /// Read access to the L2 (telemetry: victim-bit counters).
    pub fn l2(&self) -> &Cache {
        self.l2.cache()
    }

    /// Highest L2 MSHR occupancy seen so far (telemetry gauge).
    pub fn l2_mshr_peak(&self) -> usize {
        self.l2.mshr().peak_occupancy()
    }

    /// Attaches a shared event-trace ring to this partition: L2 fill and
    /// MSHR events tagged `L2#<id>`, DRAM row-buffer events tagged
    /// `DRAM#<id>`.
    pub fn set_trace(&mut self, ring: &gcache_core::trace::SharedTraceRing) {
        use gcache_core::trace::{TraceLevel, TraceSource};
        let src = TraceSource::new(TraceLevel::L2, self.id.0 as u16);
        self.l2.set_trace(src, ring.sink());
        self.l2.cache_mut().set_trace(src, ring.sink());
        self.dram.set_trace(
            TraceSource::new(TraceLevel::Dram, self.id.0 as u16),
            ring.sink(),
        );
    }

    /// Hands over a request ejected from the request network.
    pub fn push_request(&mut self, req: MemRequest) {
        self.incoming.push_back(req);
    }

    /// Takes one response whose L2 pipeline latency has elapsed.
    pub fn pop_response(&mut self, now: u64) -> Option<MemResponse> {
        match self.outgoing.front() {
            Some((_, ready)) if *ready <= now => self.outgoing.pop_front().map(|(r, _)| r),
            _ => None,
        }
    }

    /// Whether everything has drained: no queued requests, no outstanding
    /// misses, no pending responses, idle DRAM.
    pub fn is_idle(&self) -> bool {
        self.incoming.is_empty()
            && self.outgoing.is_empty()
            && self.l2.quiesced()
            && self.dram.is_idle()
    }

    /// A lower bound on the partition's next state-changing cycle
    /// (`None` = fully drained). Queued incoming work pins the bound to
    /// the next L2 tick — a stalled head-of-line request mutates stall
    /// statistics there, so those cycles must be ticked, never skipped.
    /// Everything else derives from response readiness and DRAM timing;
    /// a buffered DRAM completion is applied at the first L2 tick at or
    /// after its data-ready cycle.
    pub fn next_event(&self, now: u64) -> Option<u64> {
        let next_l2_tick = (now / self.l2_period + 1) * self.l2_period;
        let mut ev: Option<u64> = None;
        let mut fold = |t: u64| ev = Some(ev.map_or(t, |e| e.min(t)));
        if let Some(&(_, ready)) = self.outgoing.front() {
            fold(ready.max(now + 1));
        }
        if !self.incoming.is_empty() {
            fold(next_l2_tick);
        }
        if let Some(ready) = self.dram.next_completion() {
            fold(ready.max(now + 1).div_ceil(self.l2_period) * self.l2_period);
        }
        if let Some(t) = self.dram.next_event(now) {
            fold(t);
        }
        ev
    }

    /// Advances the partition by one core cycle.
    pub fn tick(&mut self, now: u64) {
        self.dram.tick(now);
        if now.is_multiple_of(self.l2_period) {
            self.drain_dram(now);
            self.serve_one(now);
        }
    }

    /// Applies completed DRAM reads: fill the L2, release merged targets.
    fn drain_dram(&mut self, now: u64) {
        let mut targets = std::mem::take(&mut self.target_scratch);
        while let Some(token) = self.dram.pop_completed(now) {
            let DramToken::Fill(local) = token else {
                continue;
            };
            // The fill decision derives from the merged targets: any store
            // or atomic among them dirties the allocate, and the first
            // responder becomes the primary core whose victim bit the fill
            // sets.
            let mut primary_core = CoreId(0);
            let outcome = self.l2.fill_with(local, &mut targets, |ts| {
                let dirty = ts
                    .iter()
                    .any(|t| matches!(t, L2Target::Write | L2Target::Atomic { .. }));
                // The primary requester's core id and declared class drive
                // the fill decision (atomics carry no class).
                let (core, class) = ts
                    .iter()
                    .find_map(|t| match t {
                        L2Target::Read { core, class, .. } => Some((*core, *class)),
                        L2Target::Atomic { core, .. } => Some((*core, None)),
                        L2Target::Write => None,
                    })
                    .unwrap_or((CoreId(0), None));
                primary_core = core;
                FillParams {
                    core,
                    victim_hint: false,
                    dirty,
                    class,
                }
            });
            if let Some(ev) = outcome.evicted {
                if ev.dirty {
                    // Write-back; drop silently if the DRAM queue is full —
                    // timing-only model, the data itself is not tracked.
                    // (Capacity is sized so this is rare; it is counted.)
                    if self
                        .dram
                        .enqueue(ev.line, true, DramToken::Writeback, now)
                        .is_err()
                    {
                        self.stats.stall_cycles += 1;
                    }
                }
            }
            let mut first_responder = true;
            for &t in &targets {
                match t {
                    L2Target::Write => {}
                    L2Target::Read { core, warp, class } => {
                        // The fill already set the primary core's victim
                        // bit; additional requesters observe their own.
                        let hint = if first_responder && core == primary_core {
                            first_responder = false;
                            false
                        } else {
                            self.l2
                                .cache_mut()
                                .victim_observe(local, core)
                                .unwrap_or(false)
                        };
                        self.queue_response(core, warp, local, AccessKind::Read, hint, class, now);
                    }
                    L2Target::Atomic { core, warp } => {
                        first_responder = false;
                        let ready = self.aou_admit(now);
                        self.outgoing.push_back((
                            MemResponse {
                                line: self.global(local),
                                kind: AccessKind::Atomic,
                                core,
                                warp,
                                victim_hint: false,
                                class: None,
                            },
                            ready,
                        ));
                        self.stats.atomics += 1;
                    }
                }
            }
        }
        targets.clear();
        self.target_scratch = targets;
    }

    /// Serves at most one incoming request per L2 cycle.
    ///
    /// External-resource checks (DRAM queue space, MSHR entries) happen
    /// *before* the controller access is committed so a stalled
    /// head-of-line request does not re-access the L2 every tick (which
    /// would corrupt statistics and policy ageing).
    fn serve_one(&mut self, now: u64) {
        let Some(&req) = self.incoming.front() else {
            return;
        };
        let local = partition_local_line(req.line, self.partitions);

        if req.kind == AccessKind::CopyBack {
            // Clean copy-back from an upstream cache (RDC-style): install
            // the line clean, off the hit/miss bookkeeping — maintenance
            // traffic must not perturb L2 statistics or MSHR state. If a
            // demand miss for the line is already in flight the DRAM fill
            // will install identical data, so the copy-back is dropped.
            if !self.l2.contains(local) && !self.l2.pending_miss(local) {
                // A clean fill can still evict a dirty victim, which needs
                // a DRAM write-back slot.
                if !self.dram.can_accept() {
                    self.stats.stall_cycles += 1;
                    return;
                }
                let outcome = self
                    .l2
                    .cache_mut()
                    .fill(AccessCtx::plain(local, req.core), false);
                if let Some(ev) = outcome.evicted {
                    if ev.dirty {
                        self.dram
                            .enqueue(ev.line, true, DramToken::Writeback, now)
                            .expect("checked can_accept");
                    }
                }
            }
            self.incoming.pop_front();
            return;
        }

        // A primary miss needs both a DRAM queue slot and a free MSHR
        // entry; merging misses sidestep both.
        if !self.l2.contains(local)
            && !self.l2.pending_miss(local)
            && (!self.dram.can_accept() || self.l2.mshr_full())
        {
            self.stats.stall_cycles += 1;
            return;
        }

        let target = match req.kind {
            AccessKind::Write => L2Target::Write,
            AccessKind::Read => L2Target::Read {
                core: req.core,
                warp: req.warp,
                class: req.class,
            },
            AccessKind::Atomic => L2Target::Atomic {
                core: req.core,
                warp: req.warp,
            },
            AccessKind::CopyBack => unreachable!("handled above"),
        };
        match self.l2.access(local, req.kind, req.core, target) {
            ControllerOutcome::Blocked(_) => {
                // Merge-list depth exhausted: replay next L2 cycle.
                self.stats.stall_cycles += 1;
                return;
            }
            ControllerOutcome::MissPrimary => {
                self.dram
                    .enqueue(local, false, DramToken::Fill(local), now)
                    .expect("checked can_accept");
            }
            ControllerOutcome::MissMerged => {}
            ControllerOutcome::Hit { victim_hint } => match req.kind {
                AccessKind::Write => {}
                AccessKind::Read => {
                    self.queue_response(
                        req.core,
                        req.warp,
                        local,
                        AccessKind::Read,
                        victim_hint,
                        req.class,
                        now,
                    );
                }
                AccessKind::Atomic => {
                    let ready = self.aou_admit(now);
                    self.outgoing.push_back((
                        MemResponse {
                            line: req.line,
                            kind: AccessKind::Atomic,
                            core: req.core,
                            warp: req.warp,
                            victim_hint: false,
                            class: None,
                        },
                        ready,
                    ));
                    self.stats.atomics += 1;
                }
                AccessKind::CopyBack => unreachable!("handled above"),
            },
            ControllerOutcome::Forward => {
                unreachable!("the L2 allocates writes and executes atomics locally")
            }
        }
        self.incoming.pop_front();
    }

    #[allow(clippy::too_many_arguments)]
    fn queue_response(
        &mut self,
        core: CoreId,
        warp: WarpSlot,
        local: LineAddr,
        kind: AccessKind,
        victim_hint: bool,
        class: Option<RequestClass>,
        now: u64,
    ) {
        self.outgoing.push_back((
            MemResponse {
                line: self.global(local),
                kind,
                core,
                warp,
                victim_hint,
                class,
            },
            now + self.l2_latency,
        ));
    }

    /// Serialises atomics through the AOU; returns the completion time.
    fn aou_admit(&mut self, now: u64) -> u64 {
        let start = self.aou_busy_until.max(now);
        self.aou_busy_until = start + self.atomic_latency;
        self.aou_busy_until + self.l2_latency
    }

    fn global(&self, local: LineAddr) -> LineAddr {
        crate::request::global_line(local, self.id, self.partitions)
    }
}

impl Snapshot for Partition {
    /// Saves the L2 controller, DRAM channel, traffic queues, AOU window
    /// and partition counters. `id`/`partitions`/latencies are
    /// construction-time configuration.
    fn save(&self, w: &mut SnapshotWriter) {
        w.section("part", |w| {
            self.l2.save(w);
            self.dram.save(w);
            w.usize(self.incoming.len());
            for req in &self.incoming {
                req.save_payload(w);
            }
            w.usize(self.outgoing.len());
            for (resp, ready) in &self.outgoing {
                resp.save_payload(w);
                w.u64(*ready);
            }
            w.u64(self.aou_busy_until);
            w.u64(self.stats.atomics);
            w.u64(self.stats.stall_cycles);
        });
    }

    fn restore(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        r.section("part", |r| {
            self.l2.restore(r)?;
            self.dram.restore(r)?;
            let n = r.usize()?;
            self.incoming.clear();
            for _ in 0..n {
                self.incoming.push_back(MemRequest::restore_payload(r)?);
            }
            let n = r.usize()?;
            self.outgoing.clear();
            for _ in 0..n {
                let resp = MemResponse::restore_payload(r)?;
                let ready = r.u64()?;
                self.outgoing.push_back((resp, ready));
            }
            self.aou_busy_until = r.u64()?;
            self.stats.atomics = r.u64()?;
            self.stats.stall_cycles = r.u64()?;
            Ok(())
        })
    }
}

impl Clocked for Partition {
    fn tick(&mut self, now: u64) {
        Partition::tick(self, now);
    }

    fn is_idle(&self) -> bool {
        Partition::is_idle(self)
    }

    fn next_event(&self, now: u64) -> Option<u64> {
        Partition::next_event(self, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::partition_of;

    fn partition() -> Partition {
        let cfg = GpuConfig::fermi().unwrap();
        Partition::new(PartitionId(0), &cfg)
    }

    /// A line that maps to partition 0.
    fn line_for_p0(i: u64) -> LineAddr {
        let line = LineAddr::new(i * 8); // partitions=8 → low 3 bits select
        assert_eq!(partition_of(line, 8).index(), 0);
        line
    }

    fn read(line: LineAddr, core: usize, warp: WarpSlot) -> MemRequest {
        MemRequest {
            line,
            kind: AccessKind::Read,
            core: CoreId(core),
            warp,
            class: None,
        }
    }

    fn run_until_response(p: &mut Partition, start: u64, max: u64) -> (MemResponse, u64) {
        for now in start..start + max {
            p.tick(now);
            if let Some(r) = p.pop_response(now) {
                return (r, now);
            }
        }
        panic!("no response within {max} cycles");
    }

    #[test]
    fn read_miss_goes_to_dram_and_returns() {
        let mut p = partition();
        let line = line_for_p0(5);
        p.push_request(read(line, 2, 7));
        let (resp, t) = run_until_response(&mut p, 1, 1000);
        assert_eq!(resp.line, line);
        assert_eq!(resp.core, CoreId(2));
        assert_eq!(resp.warp, 7);
        assert!(!resp.victim_hint, "first request must not carry a hint");
        assert!(t > 28, "must include DRAM latency, was {t}");
        assert_eq!(p.l2_stats().misses(), 1);
        assert_eq!(p.dram_stats().reads, 1);
    }

    #[test]
    fn second_read_hits_l2_with_victim_hint() {
        let mut p = partition();
        let line = line_for_p0(5);
        p.push_request(read(line, 2, 7));
        let (_, t1) = run_until_response(&mut p, 1, 1000);
        // Same core re-requests: L2 hit, victim bit already set → hint.
        p.push_request(read(line, 2, 8));
        let (resp, t2) = run_until_response(&mut p, t1 + 1, 1000);
        assert!(
            resp.victim_hint,
            "re-request from same core must carry the hint"
        );
        assert!(t2 - t1 < 100, "L2 hit must be much faster than DRAM");
        // A different core gets a clean hint.
        p.push_request(read(line, 3, 0));
        let (resp, _) = run_until_response(&mut p, t2 + 1, 1000);
        assert!(!resp.victim_hint);
    }

    #[test]
    fn merged_reads_release_together() {
        let mut p = partition();
        let line = line_for_p0(9);
        p.push_request(read(line, 0, 1));
        p.push_request(read(line, 1, 2));
        let mut responses = Vec::new();
        for now in 1..2000 {
            p.tick(now);
            while let Some(r) = p.pop_response(now) {
                responses.push(r);
            }
            if responses.len() == 2 {
                break;
            }
        }
        assert_eq!(responses.len(), 2);
        assert_eq!(p.dram_stats().reads, 1, "merged miss must fetch once");
        let hints: Vec<_> = responses.iter().map(|r| r.victim_hint).collect();
        assert_eq!(
            hints,
            vec![false, false],
            "distinct cores, first touch each"
        );
    }

    #[test]
    fn write_miss_allocates_dirty() {
        let mut p = partition();
        let line = line_for_p0(3);
        p.push_request(MemRequest {
            line,
            kind: AccessKind::Write,
            core: CoreId(0),
            warp: 0,
            class: None,
        });
        for now in 1..2000 {
            p.tick(now);
        }
        assert!(p.is_idle());
        assert_eq!(p.l2_stats().fills, 1);
        // The allocated line is dirty: flushing produces one write-back.
        assert_eq!(p.l2_mut().flush().len(), 1);
    }

    #[test]
    fn atomic_returns_response_and_counts() {
        let mut p = partition();
        let line = line_for_p0(4);
        p.push_request(MemRequest {
            line,
            kind: AccessKind::Atomic,
            core: CoreId(1),
            warp: 3,
            class: None,
        });
        let (resp, _) = run_until_response(&mut p, 1, 2000);
        assert_eq!(resp.kind, AccessKind::Atomic);
        assert_eq!(p.stats().atomics, 1);
        // Atomic dirties the line (RMW).
        assert_eq!(p.l2_mut().flush().len(), 1);
    }

    #[test]
    fn aou_serialises_atomics() {
        let mut p = partition();
        let line = line_for_p0(4);
        // Warm the line into L2 first.
        p.push_request(read(line, 0, 0));
        let (_, t0) = run_until_response(&mut p, 1, 2000);
        for w in 0..4 {
            p.push_request(MemRequest {
                line,
                kind: AccessKind::Atomic,
                core: CoreId(0),
                warp: w,
                class: None,
            });
        }
        let mut times = Vec::new();
        for now in t0 + 1..t0 + 4000 {
            p.tick(now);
            while let Some(r) = p.pop_response(now) {
                assert_eq!(r.kind, AccessKind::Atomic);
                times.push(now);
            }
            if times.len() == 4 {
                break;
            }
        }
        assert_eq!(times.len(), 4);
        // Consecutive AOU completions must be at least atomic_latency apart.
        for w in times.windows(2) {
            assert!(w[1] - w[0] >= 4, "atomics not serialised: {times:?}");
        }
    }

    #[test]
    fn capacity_eviction_writes_back() {
        let mut p = partition();
        // Dirty many distinct lines mapping to the same L2 set to force
        // dirty evictions. L2 bank: 64 sets, 16 ways.
        for i in 0..32u64 {
            let line = LineAddr::new(i * 8 * 64); // same set after local shift
            p.push_request(MemRequest {
                line,
                kind: AccessKind::Write,
                core: CoreId(0),
                warp: 0,
                class: None,
            });
        }
        for now in 1..200_000 {
            p.tick(now);
            if p.is_idle() {
                break;
            }
        }
        assert!(p.is_idle(), "partition should drain");
        assert!(p.l2_stats().writebacks >= 16, "expected dirty evictions");
        assert!(p.dram_stats().writes >= 1, "write-backs must reach DRAM");
    }
}
