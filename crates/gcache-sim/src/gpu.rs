//! The assembled GPU: a thin deterministic driver over the
//! [`crate::system`] components — core array ⇄ interconnect ⇄ (optional
//! cluster caches) ⇄ memory system — ticked in pipeline order each cycle
//! and guarded by a forward-progress [`Watchdog`].

use crate::clocked::{min_event, Clocked, ClockedWith, Watchdog};
use crate::config::GpuConfig;
use crate::isa::Kernel;
use crate::stats::SimStats;
use crate::system::{ClusterComplex, CoreComplex, Interconnect, MemorySystem};
use crate::telemetry::{Profile, Sampler, TelemetrySnapshot};
use gcache_core::snapshot::{fnv1a, Snapshot, SnapshotError, SnapshotReader, SnapshotWriter};
use gcache_core::stats::CacheStats;
use gcache_core::trace::SharedTraceRing;
use std::fmt;
use std::time::Instant;

pub use crate::config::make_l1_policy;

/// Why a simulation could not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The configured cycle budget was exhausted.
    CycleLimit {
        /// The configured limit.
        limit: u64,
    },
    /// No forward progress for a long interval — a protocol bug.
    Deadlock {
        /// Cycle at which the watchdog fired.
        cycle: u64,
        /// Human-readable state summary.
        detail: String,
    },
    /// A checkpoint sink failed; the simulation stops rather than run on
    /// without the crash protection the caller asked for.
    Checkpoint {
        /// What went wrong, including the cycle.
        detail: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::CycleLimit { limit } => write!(f, "cycle limit {limit} exhausted"),
            SimError::Deadlock { cycle, detail } => {
                write!(f, "no progress by cycle {cycle}: {detail}")
            }
            SimError::Checkpoint { detail } => write!(f, "{detail}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Sampling interval of the forward-progress watchdog, in cycles.
const WATCHDOG_INTERVAL: u64 = 4096;
/// Cycles without progress before the watchdog declares a deadlock.
const WATCHDOG_PATIENCE: u64 = 500_000;

/// The simulated GPU.
///
/// # Examples
///
/// ```
/// use gcache_sim::config::GpuConfig;
/// use gcache_sim::gpu::Gpu;
/// use gcache_sim::isa::{GridDim, Kernel, Op, TraceProgram, WarpProgram};
/// use gcache_core::addr::Addr;
///
/// struct Tiny;
/// impl Kernel for Tiny {
///     fn name(&self) -> &str { "tiny" }
///     fn grid(&self) -> GridDim { GridDim { ctas: 2, threads_per_cta: 64 } }
///     fn warp_program(&self, cta: usize, warp: usize) -> Box<dyn WarpProgram> {
///         let base = Addr::new(((cta * 2 + warp) * 4096) as u64);
///         Box::new(TraceProgram::new(vec![
///             Op::strided_load(base, 4, 32),
///             Op::Compute { cycles: 4 },
///         ]))
///     }
/// }
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut gpu = Gpu::new(GpuConfig::fermi()?);
/// let stats = gpu.run_kernel(&Tiny)?;
/// assert_eq!(stats.core.ctas_completed, 2);
/// assert!(stats.ipc() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Gpu {
    cfg: GpuConfig,
    cores: CoreComplex,
    icnt: Interconnect,
    clusters: ClusterComplex,
    mem: MemorySystem,
    cycle: u64,
    /// Optional time-series sampler; when absent (the default) the cycle
    /// loop's only extra work is one discriminant test.
    sampler: Option<Sampler>,
    /// Optional wall-clock self-profile; when absent the pipeline pass
    /// takes its untimed branch.
    profile: Option<Profile>,
    /// Clock handle of the attached event-trace ring, if any; ticked so
    /// recorded events carry the simulated cycle.
    trace: Option<SharedTraceRing>,
    /// Mid-kernel run state restored from a checkpoint, consumed by the
    /// next `run_kernel*` call (which then continues the interrupted
    /// kernel instead of starting it over).
    resume: Option<ResumeState>,
}

/// The `run_kernel` locals a checkpoint has to carry across processes:
/// where the kernel started (cycle-limit and per-kernel stat deltas) and
/// the watchdog's progress baseline.
#[derive(Debug)]
struct ResumeState {
    start_cycle: u64,
    watchdog_cycle: u64,
    watchdog_sig: (u64, u64, u64),
}

impl Gpu {
    /// Builds a GPU.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is internally inconsistent (see
    /// [`GpuConfig::validate`]).
    pub fn new(cfg: GpuConfig) -> Self {
        cfg.validate();
        let cores = CoreComplex::new(&cfg);
        let icnt = Interconnect::new(&cfg, cfg.topology());
        let clusters = ClusterComplex::new(&cfg, icnt.topology());
        let mem = MemorySystem::new(&cfg);
        Gpu {
            cfg,
            cores,
            icnt,
            clusters,
            mem,
            cycle: 0,
            sampler: None,
            profile: None,
            trace: None,
            resume: None,
        }
    }

    /// Attaches a time-series [`Sampler`]; subsequent kernels record one
    /// telemetry row per sampling interval. Sampling is passive — it reads
    /// counters the simulation updates anyway — so the simulated outcome
    /// is bit-identical with and without a sampler.
    pub fn attach_sampler(&mut self, sampler: Sampler) {
        self.sampler = Some(sampler);
    }

    /// Detaches and returns the sampler (for export after a run).
    pub fn take_sampler(&mut self) -> Option<Sampler> {
        self.sampler.take()
    }

    /// The attached sampler, if any.
    pub const fn sampler(&self) -> Option<&Sampler> {
        self.sampler.as_ref()
    }

    /// Turns on wall-clock self-profiling of the cycle pipeline; see
    /// [`Gpu::profile`]. Profiling times the host, never the simulated
    /// machine, so it cannot change simulation results.
    pub fn enable_profiling(&mut self) {
        self.profile = Some(Profile::default());
    }

    /// The self-profile accumulated so far (`None` unless
    /// [`Gpu::enable_profiling`] was called), with the wake-cache skip
    /// counters gathered from the component arrays.
    pub fn profile(&self) -> Option<Profile> {
        self.profile.map(|mut p| {
            p.wake_skips =
                self.cores.wake_skips() + self.mem.wake_skips() + self.clusters.wake_skips();
            p
        })
    }

    /// Whether every tag array in the machine — each core's L1, each
    /// cluster L1.5, each L2 bank — has its maintained per-set
    /// validity/dirty mask words equal to the reference recomputed from
    /// the per-slot states. The masks are acceleration state rebuilt (not
    /// deserialized) on checkpoint restore, so the snapshot round-trip
    /// tests assert this after [`Gpu::restore_checkpoint`].
    pub fn tag_masks_consistent(&self) -> bool {
        self.cores
            .cores()
            .iter()
            .all(|c| c.l1().cache().tags().masks_consistent())
            && self
                .clusters
                .clusters()
                .iter()
                .all(|cl| cl.cache().tags().masks_consistent())
            && self
                .mem
                .partitions()
                .iter()
                .all(|p| p.l2().tags().masks_consistent())
    }

    /// Attaches a shared structured-event trace ring to every traceable
    /// component: each L1 (cache + MSHR), each cluster L1.5, each L2 bank
    /// (cache + MSHR) and each DRAM channel. The GPU keeps a clock handle
    /// so recorded events carry the simulated cycle. See
    /// [`gcache_core::trace`] for the event taxonomy.
    pub fn attach_trace(&mut self, ring: &SharedTraceRing) {
        for c in self.cores.cores_mut() {
            c.l1_mut().set_trace(ring);
        }
        for (i, cl) in self.clusters.clusters_mut().iter_mut().enumerate() {
            cl.set_trace(i, ring);
        }
        for p in self.mem.partitions_mut() {
            p.set_trace(ring);
        }
        self.trace = Some(ring.clone());
    }

    /// The active configuration.
    pub const fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// Current simulated cycle.
    pub const fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Runs one kernel to completion and returns the aggregated statistics.
    ///
    /// A `Gpu` can run several kernels back to back (caches stay warm, as
    /// on real hardware between dependent launches); statistics accumulate
    /// across runs except `cycles`/`instructions`, which are reported per
    /// call via deltas. Use a fresh `Gpu` per measurement for clean stats.
    ///
    /// # Errors
    ///
    /// [`SimError::CycleLimit`] if `max_cycles` is exceeded;
    /// [`SimError::Deadlock`] if the watchdog detects no forward progress
    /// (a bug in the simulator or a malformed kernel, e.g. mismatched
    /// barriers).
    pub fn run_kernel(&mut self, kernel: &dyn Kernel) -> Result<SimStats, SimError> {
        self.run_kernel_inner(kernel, None)
    }

    /// [`Gpu::run_kernel`] with crash protection: every `every` cycles
    /// (measured on the global clock, so a resumed run checkpoints on the
    /// same absolute grid as an uninterrupted one) the full machine state
    /// is serialized and handed to `sink` as `(cycle, bytes)`. Feed the
    /// bytes back through [`Gpu::restore_checkpoint`] on a freshly built,
    /// identically configured `Gpu` to continue the kernel; the resumed
    /// run's statistics and telemetry are bit-identical to running
    /// straight through.
    ///
    /// Checkpointing observes the machine between cycles and serializes
    /// only state the simulation mutates anyway, so enabling it does not
    /// perturb the simulated outcome.
    ///
    /// # Errors
    ///
    /// Everything [`Gpu::run_kernel`] returns, plus
    /// [`SimError::Checkpoint`] when `sink` fails.
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    pub fn run_kernel_checkpointed(
        &mut self,
        kernel: &dyn Kernel,
        every: u64,
        mut sink: impl FnMut(u64, Vec<u8>) -> std::io::Result<()>,
    ) -> Result<SimStats, SimError> {
        assert!(every > 0, "checkpoint interval must be positive");
        self.run_kernel_inner(kernel, Some((every, &mut sink)))
    }

    #[allow(clippy::type_complexity)]
    fn run_kernel_inner(
        &mut self,
        kernel: &dyn Kernel,
        mut ckpt: Option<(u64, &mut dyn FnMut(u64, Vec<u8>) -> std::io::Result<()>)>,
    ) -> Result<SimStats, SimError> {
        let (start_cycle, mut watchdog) = match self.resume.take() {
            // Continuing a checkpointed kernel: dispatch state came back
            // with the snapshot, so `begin_kernel` must not run again.
            Some(rs) => (
                rs.start_cycle,
                Watchdog::new(
                    WATCHDOG_INTERVAL,
                    WATCHDOG_PATIENCE,
                    rs.watchdog_cycle,
                    rs.watchdog_sig,
                ),
            ),
            None => {
                let start = self.cycle;
                self.cores.begin_kernel(kernel);
                let watchdog = Watchdog::new(
                    WATCHDOG_INTERVAL,
                    WATCHDOG_PATIENCE,
                    self.cycle,
                    self.progress_signature(),
                );
                (start, watchdog)
            }
        };
        let mut ckpt_due = match &ckpt {
            Some((every, _)) => (self.cycle / every + 1) * every,
            None => u64::MAX,
        };
        if self.sampler.is_some() {
            // Baseline snapshot; a no-op on back-to-back kernels, keeping
            // one continuous series per attachment.
            let snap = self.telemetry_snapshot();
            if let Some(s) = &mut self.sampler {
                s.seed(snap);
            }
        }

        loop {
            if self.cores.fully_dispatched() && self.all_idle() {
                break;
            }

            // Idle-cycle fast-forward: jump straight to the earliest cycle
            // at which any component can make progress. The bound is
            // conservative (see `clocked`'s module docs), the watchdog's
            // sampling grid and the cycle-limit check are preserved by
            // capping the jump, and the cores bulk-account the skipped
            // cycles — so stats match the plain loop bit for bit.
            if self.cfg.fast_forward {
                let prev = self.cycle;
                let mut ev = self.cores.next_event(prev, &self.icnt);
                if ev != Some(prev + 1) {
                    ev = min_event(ev, Clocked::next_event(&self.icnt, prev));
                }
                if ev != Some(prev + 1) && !self.clusters.is_empty() {
                    ev = min_event(ev, self.clusters.next_event(prev, &self.icnt));
                }
                if ev != Some(prev + 1) {
                    ev = min_event(ev, self.mem.next_event(prev, &self.icnt));
                }
                let mut cap = watchdog
                    .next_sample(prev)
                    .min(start_cycle + self.cfg.max_cycles + 1);
                if let Some(s) = &self.sampler {
                    // Land exactly on the sampling grid; undershooting a
                    // jump is always safe (the extra ticks are no-ops).
                    cap = cap.min(s.due());
                }
                // Land exactly on the checkpoint grid too (u64::MAX when
                // checkpointing is off).
                cap = cap.min(ckpt_due);
                let target = ev.unwrap_or(cap).min(cap).max(prev + 1);
                let gap = target - prev - 1;
                if gap > 0 {
                    // Only the cores account per cycle; everything else is
                    // a pure no-op across the gap.
                    self.cores.skip(prev, gap, &self.icnt);
                    self.cycle = target - 1;
                }
                if let Some(p) = &mut self.profile {
                    p.bounds_computed += 1;
                    if gap > 0 {
                        p.ff_jumps += 1;
                        p.cycles_skipped += gap;
                    }
                }
            }

            self.cycle += 1;
            let now = self.cycle;
            if now - start_cycle > self.cfg.max_cycles {
                return Err(SimError::CycleLimit {
                    limit: self.cfg.max_cycles,
                });
            }

            if let Some(r) = &self.trace {
                r.set_time(now);
            }

            // One pipeline pass: cores (drain responses, issue, inject
            // requests) → both meshes → cluster caches (when clustered) →
            // memory (drain requests, tick, inject responses) → CTA
            // dispatch. The profiled branch is the same pass with a
            // wall-clock stamp between stages.
            if let Some(mut p) = self.profile.take() {
                let t0 = Instant::now();
                self.cores.tick_with(now, &mut self.icnt);
                let t1 = Instant::now();
                self.icnt.tick(now);
                let t2 = Instant::now();
                if !self.clusters.is_empty() {
                    self.clusters.tick_with(now, &mut self.icnt);
                }
                let t3 = Instant::now();
                self.mem.tick_with(now, &mut self.icnt);
                let t4 = Instant::now();
                self.cores.dispatch(kernel);
                let t5 = Instant::now();
                p.core_ns += (t1 - t0).as_nanos() as u64;
                p.icnt_ns += (t2 - t1).as_nanos() as u64;
                p.cluster_ns += (t3 - t2).as_nanos() as u64;
                p.mem_ns += (t4 - t3).as_nanos() as u64;
                p.dispatch_ns += (t5 - t4).as_nanos() as u64;
                p.ticked_cycles += 1;
                self.profile = Some(p);
            } else {
                self.cores.tick_with(now, &mut self.icnt);
                self.icnt.tick(now);
                if !self.clusters.is_empty() {
                    self.clusters.tick_with(now, &mut self.icnt);
                }
                self.mem.tick_with(now, &mut self.icnt);
                self.cores.dispatch(kernel);
            }

            if self.sampler.as_ref().is_some_and(|s| now >= s.due()) {
                let snap = self.telemetry_snapshot();
                if let Some(s) = &mut self.sampler {
                    s.record(snap);
                }
            }

            let (cores, icnt, mem) = (&self.cores, &self.icnt, &self.mem);
            if watchdog.observe(now, || Self::signature_of(cores, icnt, mem)) {
                return Err(SimError::Deadlock {
                    cycle: now,
                    detail: self.debug_state(),
                });
            }

            if now >= ckpt_due {
                // The pipeline, sampler and watchdog have all seen cycle
                // `now`: the machine is exactly in its between-cycles
                // state, which is what the snapshot captures.
                let bytes = self.encode_checkpoint(kernel.name(), start_cycle, &watchdog);
                let (every, sink) = ckpt.as_mut().expect("checkpoint due without a spec");
                sink(now, bytes).map_err(|e| SimError::Checkpoint {
                    detail: format!("checkpoint at cycle {now} failed: {e}"),
                })?;
                ckpt_due = (now / *every + 1) * *every;
            }
        }

        if self.sampler.is_some() {
            // Close the series with a final (possibly short) interval so
            // even sub-interval kernels produce at least one row.
            let snap = self.telemetry_snapshot();
            if let Some(s) = &mut self.sampler {
                s.record_final(snap);
            }
        }

        Ok(self.collect_stats(kernel.name(), self.cycle - start_cycle))
    }

    /// Serializes the whole machine mid-kernel. Wall-clock observers — the
    /// self-profile and the event-trace ring — are observation channels,
    /// not simulation state, and are never serialized; the resuming
    /// harness reattaches its own.
    fn encode_checkpoint(
        &self,
        kernel_name: &str,
        start_cycle: u64,
        watchdog: &Watchdog<(u64, u64, u64)>,
    ) -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        w.section("gpu", |w| {
            w.str(kernel_name);
            w.u64(self.config_fingerprint());
            w.u64(self.cycle);
            w.u64(start_cycle);
            let (wd_cycle, sig) = watchdog.last_progress();
            w.u64(wd_cycle);
            w.u64(sig.0);
            w.u64(sig.1);
            w.u64(sig.2);
            w.bool(self.sampler.is_some());
        });
        self.cores.save_snapshot(&mut w);
        self.icnt.save(&mut w);
        self.clusters.save(&mut w);
        self.mem.save(&mut w);
        if let Some(s) = &self.sampler {
            s.save(&mut w);
        }
        w.finish()
    }

    /// Restores a [`Gpu::run_kernel_checkpointed`] snapshot into this GPU,
    /// arming it so the next `run_kernel*` call continues the interrupted
    /// kernel. The GPU must be built from the same configuration as the
    /// one that wrote the snapshot (enforced via a config fingerprint),
    /// `kernel` must be the same kernel (its programs are re-derived and
    /// replayed, not serialized), and a sampler must be attached exactly
    /// when one was attached at save time.
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`] on a truncated, corrupt or mismatched
    /// snapshot. The GPU may then be partially overwritten — discard it.
    pub fn restore_checkpoint(
        &mut self,
        bytes: &[u8],
        kernel: &dyn Kernel,
    ) -> Result<(), SnapshotError> {
        let fp_expected = self.config_fingerprint();
        let mut r = SnapshotReader::new(bytes)?;
        let mut cycle = 0;
        let mut rs = ResumeState {
            start_cycle: 0,
            watchdog_cycle: 0,
            watchdog_sig: (0, 0, 0),
        };
        let mut has_sampler = false;
        r.section("gpu", |r| {
            let name = r.str()?;
            if name != kernel.name() {
                return Err(SnapshotError::Mismatch {
                    what: format!("kernel (snapshot {:?}, resuming {:?})", name, kernel.name()),
                });
            }
            let fp = r.u64()?;
            if fp != fp_expected {
                return Err(SnapshotError::Mismatch {
                    what: "configuration fingerprint".into(),
                });
            }
            cycle = r.u64()?;
            rs.start_cycle = r.u64()?;
            rs.watchdog_cycle = r.u64()?;
            rs.watchdog_sig = (r.u64()?, r.u64()?, r.u64()?);
            has_sampler = r.bool()?;
            Ok(())
        })?;
        self.cores.restore_snapshot(&mut r, kernel)?;
        self.icnt.restore(&mut r)?;
        self.clusters.restore(&mut r)?;
        self.mem.restore(&mut r)?;
        match (&mut self.sampler, has_sampler) {
            (Some(s), true) => s.restore(&mut r)?,
            (None, false) => {}
            (Some(_), false) => {
                return Err(SnapshotError::Mismatch {
                    what: "sampler attached but the snapshot carries no telemetry".into(),
                });
            }
            (None, true) => {
                return Err(SnapshotError::Mismatch {
                    what: "snapshot carries telemetry but no sampler is attached".into(),
                });
            }
        }
        self.cycle = cycle;
        self.resume = Some(rs);
        Ok(())
    }

    /// A stable fingerprint of the active configuration, embedded in every
    /// checkpoint so resume rejects a differently built machine instead of
    /// silently diverging.
    fn config_fingerprint(&self) -> u64 {
        fnv1a(format!("{:?}", self.cfg).as_bytes())
    }

    /// Gathers the cumulative counters the sampler differences. Read-only:
    /// no cache is flushed and no statistic is perturbed.
    fn telemetry_snapshot(&self) -> TelemetrySnapshot {
        let mut s = TelemetrySnapshot {
            cycle: self.cycle,
            instructions: self.cores.instructions(),
            ..TelemetrySnapshot::default()
        };
        for c in self.cores.cores() {
            let l1 = c.l1();
            let st = l1.stats();
            s.l1_accesses += st.accesses();
            s.l1_misses += st.misses();
            s.l1_fills += st.fills;
            s.l1_bypassed += st.bypassed_fills;
            if let Some((open, sets)) = l1.cache().policy().switch_summary() {
                s.switch_open += open as u64;
                s.switch_sets += sets as u64;
            }
            s.mshr_peak = s.mshr_peak.max(l1.mshr_peak() as u64);
        }
        for cl in self.clusters.clusters() {
            let st = cl.stats();
            s.l15_accesses += st.accesses();
            s.l15_misses += st.misses();
        }
        for p in self.mem.partitions() {
            let st = p.l2_stats();
            s.l2_accesses += st.accesses();
            s.l2_misses += st.misses();
            if let Some(vs) = p.l2().victim_stats() {
                s.victim_sets += vs.sets;
                s.victim_hits += vs.hits;
                s.victim_clears += vs.clears;
            }
            let d = p.dram_stats();
            s.dram_row_hits += d.row_hits;
            s.dram_row_total += d.row_hits + d.row_opens + d.row_conflicts;
        }
        s.noc_in_flight = self.icnt.in_flight() as u64;
        s.noc_queue_depth = self.icnt.max_queue_depth() as u64;
        let (rq, rs) = (self.icnt.req_stats(), self.icnt.resp_stats());
        s.noc_packets = rq.packets + rs.packets;
        s.noc_inject_fails = rq.inject_fails + rs.inject_fails;
        s.noc_delivered = rq.delivered + rs.delivered;
        s.noc_total_latency = rq.total_latency + rs.total_latency;
        s
    }

    fn all_idle(&self) -> bool {
        ClockedWith::<Interconnect>::is_idle(&self.cores)
            && self.icnt.is_idle()
            && ClockedWith::<Interconnect>::is_idle(&self.clusters)
            && ClockedWith::<Interconnect>::is_idle(&self.mem)
    }

    fn signature_of(
        cores: &CoreComplex,
        icnt: &Interconnect,
        mem: &MemorySystem,
    ) -> (u64, u64, u64) {
        let delivered = icnt.req_stats().delivered + icnt.resp_stats().delivered;
        (cores.instructions(), delivered, mem.dram_completed())
    }

    fn progress_signature(&self) -> (u64, u64, u64) {
        Self::signature_of(&self.cores, &self.icnt, &self.mem)
    }

    fn debug_state(&self) -> String {
        let idle_cores = self.cores.cores().iter().filter(|c| c.is_idle()).count();
        let idle_parts = self.mem.partitions().iter().filter(|p| p.is_idle()).count();
        format!(
            "{idle_cores}/{} cores idle, {idle_parts}/{} partitions idle, req_net idle={}, resp_net idle={}",
            self.cores.cores().len(),
            self.mem.partitions().len(),
            self.icnt.req_stats().delivered == self.icnt.req_stats().packets,
            self.icnt.resp_stats().delivered == self.icnt.resp_stats().packets
        )
    }

    /// Flushes all caches (end-of-measurement) and aggregates statistics.
    fn collect_stats(&mut self, kernel: &str, cycles: u64) -> SimStats {
        let mut l1 = CacheStats::new();
        let mut core = crate::core::CoreStats::default();
        for c in self.cores.cores_mut() {
            c.l1_mut().cache_mut().flush();
            l1.merge(c.l1().stats());
            core.merge(c.stats());
        }
        let mut l15 = CacheStats::new();
        for cl in self.clusters.clusters_mut() {
            cl.cache_mut().flush();
            l15.merge(cl.stats());
        }
        let mut l2 = CacheStats::new();
        let mut dram = crate::dram::DramStats::default();
        let mut partition = crate::partition::PartitionStats::default();
        for p in self.mem.partitions_mut() {
            p.l2_mut().flush();
            l2.merge(p.l2_stats());
            dram.merge(p.dram_stats());
            partition.merge(p.stats());
        }
        SimStats {
            kernel: kernel.to_string(),
            design: self.cfg.l1_policy.design_name(),
            cycles,
            instructions: core.instructions,
            l1,
            l15,
            l2,
            dram,
            noc_req: *self.icnt.req_stats(),
            noc_resp: *self.icnt.resp_stats(),
            xbar: self.icnt.xbar_stats().unwrap_or_default(),
            xbar_ports: self.icnt.xbar_ports_total() as u64,
            core,
            partition,
        }
    }
}
