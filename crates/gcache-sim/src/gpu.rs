//! The assembled GPU: cores + request/response meshes + memory partitions,
//! clocked by a single deterministic cycle loop.

use crate::config::{GpuConfig, L1PolicyKind};
use crate::core::SimtCore;
use crate::icnt::Mesh;
use crate::isa::Kernel;
use crate::partition::Partition;
use crate::request::{partition_of, MemRequest, MemResponse};
use crate::stats::SimStats;
use gcache_core::addr::{CoreId, PartitionId};
use gcache_core::geometry::CacheGeometry;
use gcache_core::policy::gcache::GCache;
use gcache_core::policy::lru::Lru;
use gcache_core::policy::pdp::StaticPdp;
use gcache_core::policy::pdp_dyn::DynamicPdp;
use gcache_core::policy::rrip::Rrip;
use gcache_core::policy::PolicyKind;
use gcache_core::stats::CacheStats;
use std::fmt;

/// Why a simulation could not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The configured cycle budget was exhausted.
    CycleLimit {
        /// The configured limit.
        limit: u64,
    },
    /// No forward progress for a long interval — a protocol bug.
    Deadlock {
        /// Cycle at which the watchdog fired.
        cycle: u64,
        /// Human-readable state summary.
        detail: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::CycleLimit { limit } => write!(f, "cycle limit {limit} exhausted"),
            SimError::Deadlock { cycle, detail } => {
                write!(f, "no progress by cycle {cycle}: {detail}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Builds the L1 policy for a design point (enum-dispatched: the hooks
/// run on every cache access, so no `Box<dyn>` vtable on that path).
pub fn make_l1_policy(kind: &L1PolicyKind, geom: &CacheGeometry) -> PolicyKind {
    match kind {
        L1PolicyKind::Lru => Lru::new(geom).into(),
        L1PolicyKind::Srrip { bits } => Rrip::srrip(geom, *bits).into(),
        L1PolicyKind::GCache(cfg) => GCache::new(geom, *cfg).into(),
        L1PolicyKind::StaticPdp { pd } => StaticPdp::new(geom, *pd).into(),
        L1PolicyKind::DynamicPdp(cfg) => DynamicPdp::new(geom, *cfg).into(),
    }
}

/// The simulated GPU.
///
/// # Examples
///
/// ```
/// use gcache_sim::config::GpuConfig;
/// use gcache_sim::gpu::Gpu;
/// use gcache_sim::isa::{GridDim, Kernel, Op, TraceProgram, WarpProgram};
/// use gcache_core::addr::Addr;
///
/// struct Tiny;
/// impl Kernel for Tiny {
///     fn name(&self) -> &str { "tiny" }
///     fn grid(&self) -> GridDim { GridDim { ctas: 2, threads_per_cta: 64 } }
///     fn warp_program(&self, cta: usize, warp: usize) -> Box<dyn WarpProgram> {
///         let base = Addr::new(((cta * 2 + warp) * 4096) as u64);
///         Box::new(TraceProgram::new(vec![
///             Op::strided_load(base, 4, 32),
///             Op::Compute { cycles: 4 },
///         ]))
///     }
/// }
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut gpu = Gpu::new(GpuConfig::fermi()?);
/// let stats = gpu.run_kernel(&Tiny)?;
/// assert_eq!(stats.core.ctas_completed, 2);
/// assert!(stats.ipc() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Gpu {
    cfg: GpuConfig,
    cores: Vec<SimtCore>,
    partitions: Vec<Partition>,
    req_net: Mesh<MemRequest>,
    resp_net: Mesh<MemResponse>,
    cycle: u64,
}

impl Gpu {
    /// Builds a GPU.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is internally inconsistent (see
    /// [`GpuConfig::validate`]).
    pub fn new(cfg: GpuConfig) -> Self {
        cfg.validate();
        let cores = (0..cfg.cores)
            .map(|i| SimtCore::new(CoreId(i), &cfg, make_l1_policy(&cfg.l1_policy, &cfg.l1_geometry)))
            .collect();
        let partitions = (0..cfg.partitions).map(|p| Partition::new(PartitionId(p), &cfg)).collect();
        let req_net = Mesh::new(cfg.mesh_width, cfg.mesh_height, cfg.router_queue, cfg.hop_latency, 1);
        let resp_net = Mesh::new(cfg.mesh_width, cfg.mesh_height, cfg.router_queue, cfg.hop_latency, 1);
        Gpu { cfg, cores, partitions, req_net, resp_net, cycle: 0 }
    }

    /// The active configuration.
    pub const fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// Current simulated cycle.
    pub const fn cycle(&self) -> u64 {
        self.cycle
    }

    fn core_node(&self, core: usize) -> usize {
        core
    }

    fn part_node(&self, part: usize) -> usize {
        self.cfg.cores + part
    }

    fn flits(&self, bytes: u32) -> u32 {
        bytes.div_ceil(self.cfg.channel_bytes)
    }

    /// Runs one kernel to completion and returns the aggregated statistics.
    ///
    /// A `Gpu` can run several kernels back to back (caches stay warm, as
    /// on real hardware between dependent launches); statistics accumulate
    /// across runs except `cycles`/`instructions`, which are reported per
    /// call via deltas. Use a fresh `Gpu` per measurement for clean stats.
    ///
    /// # Errors
    ///
    /// [`SimError::CycleLimit`] if `max_cycles` is exceeded;
    /// [`SimError::Deadlock`] if the watchdog detects no forward progress
    /// (a bug in the simulator or a malformed kernel, e.g. mismatched
    /// barriers).
    pub fn run_kernel(&mut self, kernel: &dyn Kernel) -> Result<SimStats, SimError> {
        let grid = kernel.grid();
        let total_ctas = grid.ctas;
        let mut next_cta = 0usize;
        let mut rr_core = 0usize;
        let start_cycle = self.cycle;

        // Initial placement: round-robin CTAs over cores until full.
        next_cta = self.refill_ctas(kernel, next_cta, total_ctas, &mut rr_core);

        let mut last_progress_cycle = self.cycle;
        let mut last_progress_sig = self.progress_signature();

        loop {
            if next_cta >= total_ctas && self.all_idle() {
                break;
            }
            self.cycle += 1;
            let now = self.cycle;
            if now - start_cycle > self.cfg.max_cycles {
                return Err(SimError::CycleLimit { limit: self.cfg.max_cycles });
            }

            // Cores issue and feed the request network.
            for i in 0..self.cores.len() {
                let node = self.core_node(i);
                let can_inject = self.req_net.can_inject(node);
                if let Some(req) = self.cores[i].tick(now, can_inject) {
                    let part = partition_of(req.line, self.cfg.partitions);
                    let flits = self.flits(req.packet_bytes(self.cfg.line_size()));
                    let dst = self.part_node(part.index());
                    self.req_net
                        .inject_at(node, dst, flits, req, now)
                        .expect("injection gated by can_inject");
                }
            }

            self.req_net.tick(now);
            self.resp_net.tick(now);

            // Partitions consume requests, tick, and emit responses.
            for p in 0..self.partitions.len() {
                let node = self.part_node(p);
                while let Some(req) = self.req_net.eject(node) {
                    self.partitions[p].push_request(req);
                }
                self.partitions[p].tick(now);
                while self.resp_net.can_inject(node) {
                    let Some(resp) = self.partitions[p].pop_response(now) else { break };
                    let flits = self.flits(resp.packet_bytes(self.cfg.line_size()));
                    let dst = self.core_node(resp.core.index());
                    self.resp_net
                        .inject_at(node, dst, flits, resp, now)
                        .expect("injection gated by can_inject");
                }
            }

            // Responses wake warps.
            for i in 0..self.cores.len() {
                let node = self.core_node(i);
                while let Some(resp) = self.resp_net.eject(node) {
                    self.cores[i].on_response(resp);
                }
            }

            // Keep cores fed with CTAs.
            if next_cta < total_ctas {
                next_cta = self.refill_ctas(kernel, next_cta, total_ctas, &mut rr_core);
            }

            // Watchdog.
            if now.is_multiple_of(4096) {
                let sig = self.progress_signature();
                if sig == last_progress_sig {
                    if now - last_progress_cycle > 500_000 {
                        return Err(SimError::Deadlock { cycle: now, detail: self.debug_state() });
                    }
                } else {
                    last_progress_sig = sig;
                    last_progress_cycle = now;
                }
            }
        }

        Ok(self.collect_stats(kernel.name(), self.cycle - start_cycle))
    }

    fn refill_ctas(
        &mut self,
        kernel: &dyn Kernel,
        mut next_cta: usize,
        total: usize,
        rr_core: &mut usize,
    ) -> usize {
        let n = self.cores.len();
        let mut stalled = 0;
        while next_cta < total && stalled < n {
            let c = *rr_core % n;
            if self.cores[c].can_launch(kernel) {
                self.cores[c].launch_cta(kernel, next_cta);
                next_cta += 1;
                stalled = 0;
            } else {
                stalled += 1;
            }
            *rr_core = (*rr_core + 1) % n;
        }
        next_cta
    }

    fn all_idle(&self) -> bool {
        self.cores.iter().all(SimtCore::is_idle)
            && self.req_net.is_idle()
            && self.resp_net.is_idle()
            && self.partitions.iter().all(Partition::is_idle)
    }

    fn progress_signature(&self) -> (u64, u64, u64) {
        let instr: u64 = self.cores.iter().map(|c| c.stats().instructions).sum();
        let delivered = self.req_net.stats().delivered + self.resp_net.stats().delivered;
        let dram: u64 = self.partitions.iter().map(|p| p.dram_stats().completed).sum();
        (instr, delivered, dram)
    }

    fn debug_state(&self) -> String {
        let idle_cores = self.cores.iter().filter(|c| c.is_idle()).count();
        let idle_parts = self.partitions.iter().filter(|p| p.is_idle()).count();
        format!(
            "{idle_cores}/{} cores idle, {idle_parts}/{} partitions idle, req_net idle={}, resp_net idle={}",
            self.cores.len(),
            self.partitions.len(),
            self.req_net.is_idle(),
            self.resp_net.is_idle()
        )
    }

    /// Flushes all caches (end-of-measurement) and aggregates statistics.
    fn collect_stats(&mut self, kernel: &str, cycles: u64) -> SimStats {
        let mut l1 = CacheStats::new();
        let mut core = crate::core::CoreStats::default();
        for c in &mut self.cores {
            c.l1_mut().cache_mut().flush();
            l1.merge(c.l1().stats());
            core.merge(c.stats());
        }
        let mut l2 = CacheStats::new();
        let mut dram = crate::dram::DramStats::default();
        let mut partition = crate::partition::PartitionStats::default();
        for p in &mut self.partitions {
            p.l2_mut().flush();
            l2.merge(p.l2_stats());
            dram.merge(p.dram_stats());
            partition.merge(p.stats());
        }
        SimStats {
            kernel: kernel.to_string(),
            design: self.cfg.l1_policy.design_name(),
            cycles,
            instructions: core.instructions,
            l1,
            l2,
            dram,
            noc_req: *self.req_net.stats(),
            noc_resp: *self.resp_net.stats(),
            core,
            partition,
        }
    }
}
