//! The core↔L1.5 cluster crossbar.
//!
//! PR 4 wired each cluster's cores to their shared L1.5 *through the
//! cluster's single mesh node*, so every request and every 5-flit fill
//! response of a 4- or 8-core cluster serialised through one injection
//! port — an artificial bandwidth cliff that dominated the clustered
//! results (`results/hierarchy.txt` geomeans of 0.70×/0.47× vs flat).
//! [`ClusterXbar`] replaces that link with an explicitly modeled
//! crossbar: per-source bounded input queues, a configurable number of
//! transfer ports each serialising one packet at a time
//! (`busy_until = now + flits`), round-robin arbitration over sources,
//! and a fixed traversal latency. With `ports ≥ 2` a cluster can move
//! several packets between its cores and its L1.5 concurrently; the
//! mesh still carries all L1.5↔partition traffic.
//!
//! `--cluster-ports 1` (the default) keeps the PR 4 wiring over the
//! mesh node itself — the degenerate serialization-equivalent setting,
//! bit-for-bit reproducing the previous results — so the crossbar's
//! effect can be isolated from the L1.5 capacity effect.

use std::collections::VecDeque;

use crate::clocked::Clocked;
use gcache_core::snapshot::{
    Snapshot, SnapshotError, SnapshotPayload, SnapshotReader, SnapshotWriter,
};

/// Aggregate crossbar statistics (both lanes of one cluster, or summed
/// over clusters by [`crate::system::Interconnect::xbar_stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct XbarStats {
    /// Packets granted a transfer port.
    pub grants: u64,
    /// Port·cycles spent serialising packets — divide by
    /// `ports × cycles` for mean port occupancy.
    pub flit_cycles: u64,
    /// Failed enqueue attempts (source queue full).
    pub inject_fails: u64,
}

/// One direction of the crossbar: `sources` bounded input queues feeding
/// `dsts` delivery queues through `ports` serialising transfer ports.
///
/// The up lane of a cluster is `cluster_size → 1` ([`crate::request::MemRequest`]s
/// towards the L1.5); the down lane is `1 → cluster_size`
/// ([`crate::request::MemResponse`]s back to the cores).
#[derive(Debug)]
pub struct XbarLane<T> {
    queue_cap: usize,
    latency: u64,
    /// Per-source FIFO: `(flits, ready_at, dst, payload)`.
    queues: Vec<VecDeque<(u32, u64, usize, T)>>,
    /// Cycle until which each transfer port is serialising a packet.
    port_busy: Vec<u64>,
    /// Round-robin source cursor.
    rr: usize,
    /// Packets in traversal, arrival-ordered (grants are issued in time
    /// order and the latency is constant): `(arrive_at, dst, payload)`.
    in_flight: VecDeque<(u64, usize, T)>,
    /// Per-destination delivery queues (drained by the consumer's tick,
    /// unbounded like the mesh's delivered queues).
    delivered: Vec<VecDeque<T>>,
    /// Packets anywhere in the lane, for O(1) idle checks.
    occupancy: usize,
    stats: XbarStats,
}

impl<T> XbarLane<T> {
    fn new(sources: usize, dsts: usize, ports: usize, queue_cap: usize, latency: u64) -> Self {
        assert!(sources > 0 && dsts > 0 && ports > 0 && queue_cap > 0);
        XbarLane {
            queue_cap,
            latency: latency.max(1),
            queues: (0..sources).map(|_| VecDeque::new()).collect(),
            port_busy: vec![0; ports],
            rr: 0,
            in_flight: VecDeque::new(),
            delivered: (0..dsts).map(|_| VecDeque::new()).collect(),
            occupancy: 0,
            stats: XbarStats::default(),
        }
    }

    /// Whether source `src`'s input queue has room.
    pub fn can_accept(&self, src: usize) -> bool {
        self.queues[src].len() < self.queue_cap
    }

    /// Enqueues a packet at source `src` bound for `dst`. Mirrors
    /// [`crate::icnt::Mesh::inject_at`]: the packet becomes eligible for
    /// arbitration the following cycle, and a full queue counts an
    /// inject-fail and drops nothing (the caller gates on
    /// [`XbarLane::can_accept`] and retries).
    pub fn push(&mut self, src: usize, dst: usize, flits: u32, payload: T, now: u64) -> bool {
        if self.queues[src].len() >= self.queue_cap {
            self.stats.inject_fails += 1;
            return false;
        }
        self.queues[src].push_back((flits.max(1), now + 1, dst, payload));
        self.occupancy += 1;
        true
    }

    /// Whether a delivered packet awaits the consumer at `dst`.
    pub fn has_delivered(&self, dst: usize) -> bool {
        !self.delivered[dst].is_empty()
    }

    /// Takes one delivered packet at `dst`, if any.
    pub fn eject(&mut self, dst: usize) -> Option<T> {
        let p = self.delivered[dst].pop_front();
        if p.is_some() {
            self.occupancy -= 1;
        }
        p
    }

    /// Lane statistics so far.
    pub const fn stats(&self) -> &XbarStats {
        &self.stats
    }

    /// Whether any packet is queued, in traversal or awaiting ejection.
    pub fn is_idle(&self) -> bool {
        self.occupancy == 0
    }

    fn tick(&mut self, now: u64) {
        if self.occupancy == 0 {
            return;
        }
        // Arrivals first: packets whose traversal completes this cycle
        // become visible to their destination's tick.
        while let Some(&(arrive, dst, _)) = self.in_flight.front() {
            if arrive > now {
                break;
            }
            let (_, _, payload) = self.in_flight.pop_front().expect("non-empty front");
            self.delivered[dst].push_back(payload);
        }
        // Arbitration: each free port grants one ready head, round-robin
        // over sources; a source wins at most one port per cycle (its
        // queue head moves, and the next packet only becomes eligible
        // next cycle if it was pushed this one — but an older queued
        // packet is ready, so cap grants per source explicitly by
        // advancing the cursor past granted sources).
        let sources = self.queues.len();
        for port in 0..self.port_busy.len() {
            if self.port_busy[port] > now {
                continue;
            }
            let start = self.rr;
            let mut granted = None;
            for k in 0..sources {
                let src = (start + k) % sources;
                if let Some(&(_, ready_at, _, _)) = self.queues[src].front() {
                    if ready_at <= now {
                        granted = Some(src);
                        break;
                    }
                }
            }
            let Some(src) = granted else { break };
            let (flits, _, dst, payload) = self.queues[src].pop_front().expect("ready head");
            self.port_busy[port] = now + u64::from(flits);
            self.in_flight.push_back((now + self.latency, dst, payload));
            self.stats.grants += 1;
            self.stats.flit_cycles += u64::from(flits);
            self.rr = (src + 1) % sources;
        }
    }

    /// Conservative lower bound on the lane's next state change.
    fn next_event(&self, now: u64) -> Option<u64> {
        if self.occupancy == 0 {
            return None;
        }
        // Delivered packets pin the consumer at the next cycle, and a
        // queued head may be granted as soon as both it and a port are
        // free; the in-flight front arrives at a known cycle.
        if self.delivered.iter().any(|d| !d.is_empty()) {
            return Some(now + 1);
        }
        let mut ev = u64::MAX;
        if let Some(&(arrive, _, _)) = self.in_flight.front() {
            ev = ev.min(arrive);
        }
        let free_port = self.port_busy.iter().copied().min().unwrap_or(u64::MAX);
        for q in &self.queues {
            if let Some(&(_, ready_at, _, _)) = q.front() {
                ev = ev.min(ready_at.max(free_port));
            }
        }
        if ev == u64::MAX {
            None
        } else {
            Some(ev.max(now + 1))
        }
    }
}

impl<T: SnapshotPayload> Snapshot for XbarLane<T> {
    /// Saves the input queues, port serialisation windows, round-robin
    /// cursor, in-traversal packets, delivery queues and statistics.
    /// `occupancy` is recounted on restore rather than trusted from the
    /// snapshot.
    fn save(&self, w: &mut SnapshotWriter) {
        w.section("xbar_lane", |w| {
            w.usize(self.queues.len());
            for q in &self.queues {
                w.usize(q.len());
                for &(flits, ready_at, dst, ref payload) in q {
                    w.u32(flits);
                    w.u64(ready_at);
                    w.usize(dst);
                    payload.save_payload(w);
                }
            }
            w.usize(self.port_busy.len());
            for &b in &self.port_busy {
                w.u64(b);
            }
            w.usize(self.rr);
            w.usize(self.in_flight.len());
            for &(arrive, dst, ref payload) in &self.in_flight {
                w.u64(arrive);
                w.usize(dst);
                payload.save_payload(w);
            }
            w.usize(self.delivered.len());
            for d in &self.delivered {
                w.usize(d.len());
                for payload in d {
                    payload.save_payload(w);
                }
            }
            w.u64(self.stats.grants);
            w.u64(self.stats.flit_cycles);
            w.u64(self.stats.inject_fails);
        });
    }

    fn restore(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        r.section("xbar_lane", |r| {
            let sources = r.usize()?;
            if sources != self.queues.len() {
                return Err(SnapshotError::Mismatch {
                    what: format!(
                        "crossbar source count (snapshot {sources}, lane {})",
                        self.queues.len()
                    ),
                });
            }
            let mut occupancy = 0;
            for q in &mut self.queues {
                let len = r.usize()?;
                q.clear();
                for _ in 0..len {
                    let flits = r.u32()?;
                    let ready_at = r.u64()?;
                    let dst = r.usize()?;
                    let payload = T::restore_payload(r)?;
                    q.push_back((flits, ready_at, dst, payload));
                }
                occupancy += len;
            }
            let ports = r.usize()?;
            if ports != self.port_busy.len() {
                return Err(SnapshotError::Mismatch {
                    what: format!(
                        "crossbar port count (snapshot {ports}, lane {})",
                        self.port_busy.len()
                    ),
                });
            }
            for b in &mut self.port_busy {
                *b = r.u64()?;
            }
            self.rr = r.usize()?;
            let n = r.usize()?;
            self.in_flight.clear();
            for _ in 0..n {
                let arrive = r.u64()?;
                let dst = r.usize()?;
                let payload = T::restore_payload(r)?;
                self.in_flight.push_back((arrive, dst, payload));
            }
            occupancy += n;
            let dsts = r.usize()?;
            if dsts != self.delivered.len() {
                return Err(SnapshotError::Mismatch {
                    what: format!(
                        "crossbar sink count (snapshot {dsts}, lane {})",
                        self.delivered.len()
                    ),
                });
            }
            for d in &mut self.delivered {
                let len = r.usize()?;
                d.clear();
                for _ in 0..len {
                    d.push_back(T::restore_payload(r)?);
                }
                occupancy += len;
            }
            self.occupancy = occupancy;
            self.stats.grants = r.u64()?;
            self.stats.flit_cycles = r.u64()?;
            self.stats.inject_fails = r.u64()?;
            Ok(())
        })
    }
}

impl Snapshot for ClusterXbar {
    fn save(&self, w: &mut SnapshotWriter) {
        w.section("xbar", |w| {
            self.up.save(w);
            self.down.save(w);
        });
    }

    fn restore(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        r.section("xbar", |r| {
            self.up.restore(r)?;
            self.down.restore(r)
        })
    }
}

/// A cluster's two crossbar lanes: requests up (cores → shared L1.5) and
/// responses down (L1.5 → cores). The lanes are independent fields so the
/// interconnect can hand out disjoint mutable views of them (a core's
/// receive side borrows `down` while its send side borrows `up`).
#[derive(Debug)]
pub struct ClusterXbar {
    /// Requests towards the L1.5: `cluster_size` sources, one sink.
    pub(crate) up: XbarLane<crate::request::MemRequest>,
    /// Responses towards the cores: one source, `cluster_size` sinks.
    pub(crate) down: XbarLane<crate::request::MemResponse>,
}

impl ClusterXbar {
    /// Builds the two lanes of one cluster's crossbar: `ports` transfer
    /// ports per lane, per-source input queues of `queue_cap`, and a
    /// fixed `latency`-cycle traversal (the modeled analogue of one mesh
    /// hop).
    pub fn new(cluster_size: usize, ports: usize, queue_cap: usize, latency: u64) -> Self {
        ClusterXbar {
            up: XbarLane::new(cluster_size, 1, ports, queue_cap, latency),
            down: XbarLane::new(1, cluster_size, ports, queue_cap, latency),
        }
    }

    /// Combined statistics of both lanes.
    pub fn stats(&self) -> XbarStats {
        let (u, d) = (self.up.stats(), self.down.stats());
        XbarStats {
            grants: u.grants + d.grants,
            flit_cycles: u.flit_cycles + d.flit_cycles,
            inject_fails: u.inject_fails + d.inject_fails,
        }
    }

    /// Gauge: packets anywhere in either lane (telemetry).
    pub const fn in_flight(&self) -> usize {
        self.up.occupancy + self.down.occupancy
    }
}

impl Clocked for ClusterXbar {
    fn tick(&mut self, now: u64) {
        self.up.tick(now);
        self.down.tick(now);
    }

    fn is_idle(&self) -> bool {
        self.up.is_idle() && self.down.is_idle()
    }

    fn next_event(&self, now: u64) -> Option<u64> {
        crate::clocked::min_event(self.up.next_event(now), self.down.next_event(now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{MemRequest, MemResponse};
    use gcache_core::addr::{CoreId, LineAddr};
    use gcache_core::policy::AccessKind;

    fn req(core: usize, line: u64) -> MemRequest {
        MemRequest {
            line: LineAddr::new(line),
            kind: AccessKind::Read,
            core: CoreId(core),
            warp: 0,
            class: None,
        }
    }

    fn resp(core: usize, line: u64) -> MemResponse {
        MemResponse {
            line: LineAddr::new(line),
            kind: AccessKind::Read,
            core: CoreId(core),
            warp: 0,
            victim_hint: false,
            class: None,
        }
    }

    #[test]
    fn up_lane_delivers_after_latency() {
        let mut xb = ClusterXbar::new(4, 2, 8, 3);
        assert!(xb.up.can_accept(0));
        assert!(xb.up.push(0, 0, 1, req(0, 7), 0));
        // Pushed at 0: eligible at 1, arrives at 1 + 3 = 4.
        for now in 1..=3 {
            xb.tick(now);
            assert!(!xb.up.has_delivered(0), "early at {now}");
        }
        xb.tick(4);
        assert_eq!(xb.up.eject(0), Some(req(0, 7)));
        assert!(xb.is_idle());
    }

    #[test]
    fn ports_bound_concurrent_transfers() {
        // Four 4-flit responses to distinct cores through 1 port vs 2
        // ports: doubling the ports roughly halves the drain time.
        let drain = |ports: usize| {
            let mut xb = ClusterXbar::new(4, ports, 8, 1);
            for c in 0..4 {
                assert!(xb.down.push(0, c, 4, resp(c, c as u64), 0));
            }
            for now in 1..100 {
                xb.tick(now);
                for c in 0..4 {
                    xb.down.eject(c);
                }
                if xb.is_idle() {
                    return now;
                }
            }
            panic!("never drained");
        };
        let one = drain(1);
        let two = drain(2);
        assert!(
            two + 3 < one,
            "2 ports ({two}) should beat 1 port ({one}) clearly"
        );
    }

    #[test]
    fn round_robin_over_sources_is_fair() {
        // All four cores flood the up lane; the single sink must see
        // grants interleaved, not one source drained to exhaustion.
        let mut xb = ClusterXbar::new(4, 1, 8, 1);
        for c in 0..4 {
            for i in 0..4 {
                assert!(xb.up.push(c, 0, 1, req(c, (c * 10 + i) as u64), 0));
            }
        }
        let mut order = Vec::new();
        for now in 1..100 {
            xb.tick(now);
            while let Some(r) = xb.up.eject(0) {
                order.push(r.core.index());
            }
        }
        assert_eq!(order.len(), 16);
        assert_eq!(
            &order[..4],
            &[0, 1, 2, 3],
            "first lap must visit all sources"
        );
        assert_eq!(xb.stats().grants, 16);
    }

    #[test]
    fn backpressure_counts_inject_fails() {
        let mut xb = ClusterXbar::new(2, 1, 2, 1);
        assert!(xb.up.push(0, 0, 1, req(0, 0), 0));
        assert!(xb.up.push(0, 0, 1, req(0, 1), 0));
        assert!(!xb.up.can_accept(0));
        assert!(!xb.up.push(0, 0, 1, req(0, 2), 0));
        assert_eq!(xb.stats().inject_fails, 1);
        // The other source still has room.
        assert!(xb.up.can_accept(1));
    }

    #[test]
    fn next_event_bounds_progress() {
        let mut xb = ClusterXbar::new(2, 1, 4, 5);
        assert_eq!(Clocked::next_event(&xb, 0), None);
        xb.up.push(0, 0, 1, req(0, 0), 0);
        // Head ready at 1, all ports free: grantable next cycle.
        assert_eq!(Clocked::next_event(&xb, 0), Some(1));
        xb.tick(1);
        // In traversal until 1 + 5 = 6.
        assert_eq!(Clocked::next_event(&xb, 1), Some(6));
        for now in 2..=6 {
            xb.tick(now);
        }
        assert!(xb.up.has_delivered(0));
        assert_eq!(Clocked::next_event(&xb, 6), Some(7));
    }
}
