//! The SIMT core: warp contexts, CTA slots, the issue stage, the LD/ST
//! unit (coalescer → L1 → network), and barrier handling.

use crate::coalescer::coalesce_into;
use crate::config::GpuConfig;
use crate::isa::{Kernel, Op, WarpProgram};
use crate::l1::{L1Controller, L1Outcome};
use crate::request::{
    restore_access_kind, restore_request_class, save_access_kind, save_request_class, MemRequest,
    MemResponse, WarpSlot,
};
use gcache_core::addr::{CoreId, LineAddr};
use gcache_core::cache::CacheConfig;
use gcache_core::geometry::CacheGeometry;
use gcache_core::policy::{AccessKind, PolicyKind, RequestClass};
use gcache_core::snapshot::SnapshotPayload;
use gcache_core::snapshot::{Snapshot, SnapshotError, SnapshotReader, SnapshotWriter};
use std::collections::VecDeque;

use crate::scheduler::WarpScheduler;

/// Execution state of one warp context.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WarpState {
    /// Can issue.
    Ready,
    /// Busy with compute/scratchpad until the given cycle.
    ComputeUntil(u64),
    /// Blocked until all outstanding memory transactions return.
    WaitMem,
    /// Waiting at a CTA barrier.
    Barrier,
    /// Program exhausted.
    Done,
}

struct Warp {
    program: Box<dyn WarpProgram>,
    /// Buffered op that could not issue (structural stall).
    pending_op: Option<Op>,
    cta_slot: usize,
    state: WarpState,
    outstanding: u32,
    age: u64,
    /// Ops pulled from `program` so far. A warp program is a pure function
    /// of its kernel coordinates, so this counter is all a snapshot needs:
    /// restore rebuilds the program and replays this many `next_op` calls.
    /// Invariant: when `pending_op` is `Some`, it holds the most recently
    /// pulled op (ops are pulled one at a time and either executed or
    /// parked in `pending_op` until they issue).
    ops_pulled: u64,
    /// Request class declared by the last [`Op::SetClass`]; stamps every
    /// subsequent global-memory transaction this warp issues.
    class: Option<RequestClass>,
}

impl std::fmt::Debug for Warp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Warp")
            .field("cta_slot", &self.cta_slot)
            .field("state", &self.state)
            .field("outstanding", &self.outstanding)
            .finish()
    }
}

/// One coalesced line transaction awaiting L1/network issue.
///
/// `set`/`tag` are decoded in one batched pass over the warp's whole
/// coalesced group at issue time (when `GpuConfig::ldst_batch` is on), so
/// the per-cycle LD/ST pump enters the L1 through the pre-decoded
/// controller path instead of re-deriving them per presentation. They are
/// derived state: snapshots serialize only `(line, kind, warp)` and
/// restore recomputes the decode, keeping the wire format unchanged.
#[derive(Debug, Clone, Copy)]
struct LdstTxn {
    line: LineAddr,
    set: usize,
    tag: u64,
    kind: AccessKind,
    warp: WarpSlot,
    class: Option<RequestClass>,
}

#[derive(Debug)]
struct CtaState {
    cta_id: usize,
    threads: usize,
    warp_slots: Vec<usize>,
    warps_done: usize,
    at_barrier: usize,
}

/// Per-core issue/stall statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct CoreStats {
    /// Warp instructions issued.
    pub instructions: u64,
    /// Memory instructions among them.
    pub mem_instructions: u64,
    /// Coalesced line transactions generated.
    pub transactions: u64,
    /// Cycles with no ready warp to issue.
    pub idle_cycles: u64,
    /// Issue slots lost because the LD/ST queue was full.
    pub ldst_full_stalls: u64,
    /// LD/ST-pipeline cycles lost to MSHR or network backpressure.
    pub mem_stall_cycles: u64,
    /// CTAs run to completion on this core.
    pub ctas_completed: u64,
}

/// One SIMT core.
#[derive(Debug)]
pub struct SimtCore {
    id: CoreId,
    warp_width: usize,
    shared_latency: u32,
    line_size: u32,
    max_threads: usize,
    /// Warp contexts (fixed slot array).
    warps: Vec<Option<Warp>>,
    ctas: Vec<Option<CtaState>>,
    threads_resident: usize,
    l1: L1Controller,
    /// L1 geometry, cached for the batched set/tag decode at issue time.
    l1_geom: CacheGeometry,
    /// Batched-decode switch (see [`LdstTxn`]); bit-identical either way.
    ldst_batch: bool,
    /// Coalesced transactions awaiting L1/network issue, one per cycle.
    ldst_queue: VecDeque<LdstTxn>,
    ldst_capacity: usize,
    /// Clean copy-backs the L1's copy-back plane produced, awaiting
    /// network injection (they drain ahead of demand traffic and are
    /// fire-and-forget). Always empty under the default planes.
    copyback_queue: VecDeque<MemRequest>,
    /// Maintained bitmask of warp slots in [`WarpState::Ready`] — the
    /// issue stage and [`SimtCore::next_event`] scan this word instead of
    /// the whole slot array (the mesh `rwake` trick). Rebuilt, not
    /// serialized, on snapshot restore.
    ready_mask: u64,
    /// Maintained bitmask of warp slots in [`WarpState::ComputeUntil`];
    /// only these are examined for their retire cycle.
    compute_mask: u64,
    sched: WarpScheduler,
    launch_seq: u64,
    stats: CoreStats,
    /// Scratch for warps woken by a fill — reused across responses so the
    /// per-fill path performs no allocation.
    woken_scratch: Vec<WarpSlot>,
    /// Scratch for coalesced lines — reused across memory instructions.
    coalesce_scratch: Vec<LineAddr>,
}

impl SimtCore {
    /// Builds a core per `cfg` with the given (already constructed) L1
    /// policy.
    pub fn new(id: CoreId, cfg: &GpuConfig, policy: impl Into<PolicyKind>) -> Self {
        let l1 = L1Controller::new(
            id,
            CacheConfig::l1(cfg.l1_geometry, cfg.l1_epoch_len)
                .with_bypass(cfg.l1_bypass)
                .with_copy_back(cfg.l1_copy_back),
            policy,
            cfg.l1_mshr_entries,
            cfg.l1_mshr_merge,
        );
        assert!(
            cfg.max_warps_per_core <= 64,
            "warp ready masks hold at most 64 slots"
        );
        SimtCore {
            id,
            warp_width: cfg.warp_width,
            shared_latency: cfg.shared_latency,
            line_size: cfg.line_size(),
            max_threads: cfg.max_threads_per_core,
            warps: (0..cfg.max_warps_per_core).map(|_| None).collect(),
            ctas: (0..cfg.max_ctas_per_core).map(|_| None).collect(),
            threads_resident: 0,
            l1,
            l1_geom: cfg.l1_geometry,
            ldst_batch: cfg.ldst_batch,
            ldst_queue: VecDeque::with_capacity(4 * cfg.warp_width),
            ldst_capacity: 4 * cfg.warp_width,
            copyback_queue: VecDeque::new(),
            ready_mask: 0,
            compute_mask: 0,
            sched: WarpScheduler::new(cfg.warp_sched),
            launch_seq: 0,
            stats: CoreStats::default(),
            woken_scratch: Vec::with_capacity(cfg.l1_mshr_merge),
            coalesce_scratch: Vec::with_capacity(cfg.warp_width),
        }
    }

    /// This core's id.
    pub const fn id(&self) -> CoreId {
        self.id
    }

    /// Issue statistics.
    pub const fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// The L1 memory unit.
    pub fn l1(&self) -> &L1Controller {
        &self.l1
    }

    /// Mutable access to the L1 (kernel-end flush).
    pub fn l1_mut(&mut self) -> &mut L1Controller {
        &mut self.l1
    }

    /// Number of resident CTAs.
    pub fn resident_ctas(&self) -> usize {
        self.ctas.iter().filter(|c| c.is_some()).count()
    }

    /// Whether `kernel`'s next CTA fits right now.
    pub fn can_launch(&self, kernel: &dyn Kernel) -> bool {
        let grid = kernel.grid();
        let wpc = grid.warps_per_cta(self.warp_width);
        let free_warp_slots = self.warps.iter().filter(|w| w.is_none()).count();
        self.ctas.iter().any(|c| c.is_none())
            && free_warp_slots >= wpc
            && self.threads_resident + grid.threads_per_cta <= self.max_threads
    }

    /// Places CTA `cta_id` of `kernel` on this core.
    ///
    /// # Panics
    ///
    /// Panics if [`SimtCore::can_launch`] is false.
    pub fn launch_cta(&mut self, kernel: &dyn Kernel, cta_id: usize) {
        assert!(self.can_launch(kernel), "launch_cta without capacity");
        let grid = kernel.grid();
        let wpc = grid.warps_per_cta(self.warp_width);
        let cta_slot = self
            .ctas
            .iter()
            .position(|c| c.is_none())
            .expect("free CTA slot");
        let mut warp_slots = Vec::with_capacity(wpc);
        for w in 0..wpc {
            let slot = self
                .warps
                .iter()
                .position(|s| s.is_none())
                .expect("free warp slot");
            self.launch_seq += 1;
            self.warps[slot] = Some(Warp {
                program: kernel.warp_program(cta_id, w),
                pending_op: None,
                cta_slot,
                state: WarpState::Ready,
                outstanding: 0,
                age: self.launch_seq,
                ops_pulled: 0,
                class: None,
            });
            self.ready_mask |= 1 << slot;
            warp_slots.push(slot);
        }
        self.threads_resident += grid.threads_per_cta;
        self.ctas[cta_slot] = Some(CtaState {
            cta_id,
            threads: grid.threads_per_cta,
            warp_slots,
            warps_done: 0,
            at_barrier: 0,
        });
    }

    /// Whether all work (warps, LD/ST queue, outstanding misses) is done.
    pub fn is_idle(&self) -> bool {
        self.ctas.iter().all(|c| c.is_none())
            && self.ldst_queue.is_empty()
            && self.copyback_queue.is_empty()
            && self.l1.quiesced()
    }

    /// Delivers a memory response from the network.
    pub fn on_response(&mut self, resp: MemResponse) {
        match resp.kind {
            AccessKind::Read => {
                // Borrow dance: take the scratch buffer so `fill_into` and
                // `complete_mem` don't alias `self`.
                let mut woken = std::mem::take(&mut self.woken_scratch);
                let copy_back =
                    self.l1
                        .fill_into(resp.line, resp.victim_hint, resp.class, &mut woken);
                if let Some(cb) = copy_back {
                    self.copyback_queue.push_back(cb);
                }
                for &warp in &woken {
                    self.complete_mem(warp);
                }
                self.woken_scratch = woken;
            }
            AccessKind::Atomic => self.complete_mem(resp.warp),
            AccessKind::Write => {}
            AccessKind::CopyBack => unreachable!("copy-backs never generate responses"),
        }
    }

    fn complete_mem(&mut self, slot: WarpSlot) {
        if let Some(w) = self.warps[slot].as_mut() {
            debug_assert!(w.outstanding > 0, "memory completion underflow");
            w.outstanding = w.outstanding.saturating_sub(1);
            if w.outstanding == 0 && w.state == WarpState::WaitMem {
                w.state = WarpState::Ready;
                self.ready_mask |= 1 << slot;
            }
        }
    }

    /// One core cycle: LD/ST pipeline then issue. Any generated network
    /// request is returned for the GPU to inject (at most one per cycle);
    /// `can_inject` tells the core whether the network can take it.
    pub fn tick(&mut self, now: u64, can_inject: bool) -> Option<MemRequest> {
        let request = self.pump_ldst(can_inject);
        self.issue(now);
        request
    }

    /// A lower bound on this core's next state-changing cycle, given that
    /// no external input (responses, network drain) arrives — so
    /// `can_inject` is frozen across the gap. `None` means the core can
    /// only be woken from outside. Per-cycle stall accounting over the
    /// skipped gap is replayed by [`SimtCore::skip`].
    pub fn next_event(&self, now: u64, can_inject: bool) -> Option<u64> {
        // A queued clean copy-back injects next cycle if the network has
        // space (it is parked on backpressure otherwise).
        if can_inject && !self.copyback_queue.is_empty() {
            return Some(now + 1);
        }
        // The head LD/ST transaction retires next cycle unless it is
        // parked on network backpressure or on L1 MSHR resources (both
        // freed only by external events).
        if let Some(txn) = self.ldst_queue.front() {
            if can_inject && !self.l1.would_block(txn.line, txn.kind) {
                return Some(now + 1);
            }
        }
        // The issue stage acts at the earliest cycle any warp is
        // pickable: Ready warps next cycle (even a warp that just lost
        // arbitration, or one parked on a full LD/ST queue — its
        // structural stall is per-cycle accounting that must be ticked),
        // compute-bound warps when their op retires. The maintained masks
        // bound the scan to the runnable slots.
        if self.ready_mask != 0 {
            return Some(now + 1);
        }
        let mut ev: Option<u64> = None;
        let mut m = self.compute_mask;
        while m != 0 {
            let s = m.trailing_zeros() as usize;
            m &= m - 1;
            let Some(w) = self.warps[s].as_ref() else {
                continue;
            };
            let WarpState::ComputeUntil(t) = w.state else {
                continue;
            };
            let t = t.max(now + 1);
            if t == now + 1 {
                return Some(t);
            }
            ev = Some(ev.map_or(t, |e| e.min(t)));
        }
        ev
    }

    /// Whether the head LD/ST transaction is ready to go and parked only
    /// on network backpressure — the one wake condition
    /// [`SimtCore::next_event`] cannot bound by a cycle number, so the
    /// caller re-checks it against the live network each cycle.
    pub fn head_waiting_on_inject(&self) -> bool {
        !self.copyback_queue.is_empty()
            || self
                .ldst_queue
                .front()
                .is_some_and(|txn| !self.l1.would_block(txn.line, txn.kind))
    }

    /// Whether any LD/ST transaction (or pending clean copy-back) is
    /// queued. Stable across event-free cycles (both queues are touched
    /// only by [`SimtCore::tick`] and the response path), and when false,
    /// [`SimtCore::skip`] never reads its `can_inject` argument — so gated
    /// callers can skip probing the network altogether.
    pub fn has_ldst_head(&self) -> bool {
        !self.ldst_queue.is_empty() || !self.copyback_queue.is_empty()
    }

    /// Replays the per-cycle accounting of `cycles` skipped event-free
    /// cycles (`now + 1 ..= now + cycles`): on each of them the head
    /// LD/ST transaction (if any) would have stalled, the issue stage
    /// would have found no pickable warp, and the scheduler would have
    /// applied its (idempotent) no-candidate transition.
    pub fn skip(&mut self, now: u64, cycles: u64, can_inject: bool) {
        if cycles == 0 {
            return;
        }
        debug_assert!(
            self.next_event(now, can_inject)
                .is_none_or(|t| t > now + cycles),
            "fast-forward skipped into a live cycle"
        );
        if let Some(txn) = self.ldst_queue.front() {
            self.stats.mem_stall_cycles += cycles;
            if can_inject {
                // With network space, each skipped cycle would have
                // re-presented the access and recorded a blocked replay.
                debug_assert!(self.l1.would_block(txn.line, txn.kind));
                self.l1.note_blocked(cycles);
            }
        }
        self.stats.idle_cycles += cycles;
        self.sched.note_idle();
    }

    /// Processes the head LD/ST transaction (clean copy-backs drain
    /// first: they hold displaced data and are fire-and-forget).
    fn pump_ldst(&mut self, can_inject: bool) -> Option<MemRequest> {
        if !self.copyback_queue.is_empty() && can_inject {
            // The copy-back takes this cycle's inject slot; a waiting
            // demand transaction stalls exactly as it would on
            // backpressure.
            if !self.ldst_queue.is_empty() {
                self.stats.mem_stall_cycles += 1;
            }
            return self.copyback_queue.pop_front();
        }
        let &LdstTxn {
            line,
            set,
            tag,
            kind,
            warp,
            class,
        } = self.ldst_queue.front()?;
        // Any access may need to inject (miss/write/atomic): gate on
        // network space to avoid mutating L1 state and then failing.
        if !can_inject {
            self.stats.mem_stall_cycles += 1;
            return None;
        }
        let outcome = if self.ldst_batch {
            self.l1.access_decoded(line, set, tag, kind, warp, class)
        } else {
            self.l1.access(line, kind, warp, class)
        };
        match outcome {
            L1Outcome::Hit => {
                self.ldst_queue.pop_front();
                self.complete_mem(warp);
                None
            }
            L1Outcome::MissMerged => {
                self.ldst_queue.pop_front();
                None
            }
            L1Outcome::Blocked => {
                self.stats.mem_stall_cycles += 1;
                None
            }
            L1Outcome::MissPrimary(req) => {
                self.ldst_queue.pop_front();
                Some(req)
            }
            L1Outcome::WriteForward(req) => {
                self.ldst_queue.pop_front();
                // Stores are fire-and-forget: nothing outstanding.
                Some(req)
            }
            L1Outcome::AtomicForward(req) => {
                self.ldst_queue.pop_front();
                Some(req)
            }
        }
    }

    /// The issue stage: pick one ready warp, execute its next op. The
    /// candidate set is assembled from the maintained ready/compute masks,
    /// so only runnable slots are examined.
    fn issue(&mut self, now: u64) {
        debug_assert!(self.masks_consistent());
        let slots = self.warps.len();
        let mut candidates = self.ready_mask;
        let mut m = self.compute_mask;
        while m != 0 {
            let s = m.trailing_zeros() as usize;
            m &= m - 1;
            if let Some(w) = self.warps[s].as_ref() {
                if let WarpState::ComputeUntil(t) = w.state {
                    if t <= now {
                        candidates |= 1 << s;
                    }
                }
            }
        }
        let warps = &self.warps;
        let picked = self.sched.pick_mask(slots, candidates, |s| {
            warps[s].as_ref().map_or(u64::MAX, |w| w.age)
        });
        let Some(slot) = picked else {
            self.stats.idle_cycles += 1;
            return;
        };

        // The picked warp leaves any compute wait and issues from Ready.
        self.compute_mask &= !(1 << slot);
        self.ready_mask |= 1 << slot;
        let op = {
            let w = self.warps[slot].as_mut().expect("picked slot is live");
            w.state = WarpState::Ready;
            let op = match w.pending_op.take() {
                Some(op) => Some(op),
                None => {
                    let op = w.program.next_op();
                    if op.is_some() {
                        w.ops_pulled += 1;
                    }
                    op
                }
            };
            match op {
                Some(op) => op,
                None => {
                    self.retire_warp(slot);
                    return;
                }
            }
        };

        // Structural check for memory ops: LD/ST queue space for the worst
        // case (one transaction per lane).
        if op.is_global_mem() && self.ldst_queue.len() + self.warp_width > self.ldst_capacity {
            self.stats.ldst_full_stalls += 1;
            let w = self.warps[slot].as_mut().expect("live");
            w.pending_op = Some(op);
            return;
        }

        self.stats.instructions += 1;
        match op {
            Op::Compute { cycles } => {
                let w = self.warps[slot].as_mut().expect("live");
                w.state = WarpState::ComputeUntil(now + cycles.max(1) as u64);
                self.ready_mask &= !(1 << slot);
                self.compute_mask |= 1 << slot;
            }
            Op::Shared => {
                let w = self.warps[slot].as_mut().expect("live");
                w.state = WarpState::ComputeUntil(now + self.shared_latency.max(1) as u64);
                self.ready_mask &= !(1 << slot);
                self.compute_mask |= 1 << slot;
            }
            Op::Barrier => {
                let cta_slot = {
                    let w = self.warps[slot].as_mut().expect("live");
                    w.state = WarpState::Barrier;
                    w.cta_slot
                };
                self.ready_mask &= !(1 << slot);
                let cta = self.ctas[cta_slot].as_mut().expect("warp's CTA is live");
                cta.at_barrier += 1;
                self.maybe_release_barrier(cta_slot);
            }
            Op::SetClass { class } => {
                // A one-slot marker instruction: the warp stays ready and
                // its subsequent memory traffic carries the class.
                let w = self.warps[slot].as_mut().expect("live");
                w.class = class;
            }
            Op::Load { addrs } => self.issue_mem(slot, &addrs, AccessKind::Read, true),
            Op::Atomic { addrs } => self.issue_mem(slot, &addrs, AccessKind::Atomic, true),
            Op::Store { addrs } => self.issue_mem(slot, &addrs, AccessKind::Write, false),
        }
    }

    /// Coalesces a memory op into line transactions and queues them;
    /// `blocking` ops park the warp until all transactions return.
    fn issue_mem(
        &mut self,
        slot: usize,
        addrs: &[Option<gcache_core::addr::Addr>],
        kind: AccessKind,
        blocking: bool,
    ) {
        self.stats.mem_instructions += 1;
        let class = self.warps[slot].as_ref().expect("live").class;
        let mut lines = std::mem::take(&mut self.coalesce_scratch);
        coalesce_into(addrs, self.line_size, &mut lines);
        let n = lines.len() as u32;
        self.stats.transactions += n as u64;
        // Decode the whole coalesced group in one batched pass (first-touch
        // order preserved — issue order is observable, see DESIGN.md §10),
        // so the per-cycle pump enters the L1 pre-decoded.
        if self.ldst_batch {
            for &line in &lines {
                self.ldst_queue.push_back(LdstTxn {
                    line,
                    set: self.l1_geom.set_of(line),
                    tag: self.l1_geom.tag_of(line),
                    kind,
                    warp: slot,
                    class,
                });
            }
        } else {
            for &line in &lines {
                self.ldst_queue.push_back(LdstTxn {
                    line,
                    set: 0,
                    tag: 0,
                    kind,
                    warp: slot,
                    class,
                });
            }
        }
        self.coalesce_scratch = lines;
        if blocking && n > 0 {
            let w = self.warps[slot].as_mut().expect("live");
            w.outstanding += n;
            w.state = WarpState::WaitMem;
            self.ready_mask &= !(1 << slot);
        }
    }

    /// A warp ran out of ops: mark done, maybe complete the CTA.
    fn retire_warp(&mut self, slot: usize) {
        let cta_slot = {
            let w = self.warps[slot].as_mut().expect("live");
            w.state = WarpState::Done;
            w.cta_slot
        };
        self.ready_mask &= !(1 << slot);
        self.sched.on_slot_freed(slot);
        let done = {
            let cta = self.ctas[cta_slot].as_mut().expect("live CTA");
            cta.warps_done += 1;
            cta.warps_done == cta.warp_slots.len()
        };
        // A finished warp is an implicit barrier arrival for the rest.
        self.maybe_release_barrier(cta_slot);
        if done {
            let cta = self.ctas[cta_slot].take().expect("live CTA");
            for s in cta.warp_slots {
                self.warps[s] = None;
                self.ready_mask &= !(1 << s);
                self.compute_mask &= !(1 << s);
                self.sched.on_slot_freed(s);
            }
            self.threads_resident -= cta.threads;
            self.stats.ctas_completed += 1;
        }
    }

    /// Serializes this core's mutable state (warp/CTA contexts, L1,
    /// LD/ST queue, scheduler, stats) into `w`.
    ///
    /// Warp programs are not serialized: a [`WarpProgram`] is a pure
    /// function of its kernel coordinates, so the snapshot records only
    /// how many ops each warp has pulled (`Warp::ops_pulled`) and
    /// [`SimtCore::restore_snapshot`] rebuilds the program from the
    /// kernel and replays it to the same point. CTAs are written before
    /// warps so restore has each warp's coordinates at hand.
    pub fn save_snapshot(&self, w: &mut SnapshotWriter) {
        w.section("core", |w| {
            w.usize(self.ctas.len());
            for cta in &self.ctas {
                match cta {
                    Some(c) => {
                        w.bool(true);
                        w.usize(c.cta_id);
                        w.usize(c.threads);
                        w.usize(c.warp_slots.len());
                        for &s in &c.warp_slots {
                            w.usize(s);
                        }
                        w.usize(c.warps_done);
                        w.usize(c.at_barrier);
                    }
                    None => w.bool(false),
                }
            }
            w.usize(self.warps.len());
            for warp in &self.warps {
                match warp {
                    Some(wp) => {
                        w.bool(true);
                        w.usize(wp.cta_slot);
                        match wp.state {
                            WarpState::Ready => w.u8(0),
                            WarpState::ComputeUntil(t) => {
                                w.u8(1);
                                w.u64(t);
                            }
                            WarpState::WaitMem => w.u8(2),
                            WarpState::Barrier => w.u8(3),
                            WarpState::Done => w.u8(4),
                        }
                        w.u32(wp.outstanding);
                        w.u64(wp.age);
                        w.u64(wp.ops_pulled);
                        // The pending op itself is the last pulled op
                        // (see `Warp::ops_pulled`); only its presence is
                        // recorded.
                        w.bool(wp.pending_op.is_some());
                        save_request_class(w, wp.class);
                    }
                    None => w.bool(false),
                }
            }
            w.usize(self.threads_resident);
            self.l1.save(w);
            // Only the logical triple goes on the wire; the set/tag decode
            // is derived state, recomputed on restore (same format as the
            // pre-batching layout).
            w.usize(self.ldst_queue.len());
            for txn in &self.ldst_queue {
                w.u64(txn.line.raw());
                save_access_kind(w, txn.kind);
                w.usize(txn.warp);
                save_request_class(w, txn.class);
            }
            w.usize(self.copyback_queue.len());
            for req in &self.copyback_queue {
                req.save_payload(w);
            }
            self.sched.save(w);
            w.u64(self.launch_seq);
            w.u64(self.stats.instructions);
            w.u64(self.stats.mem_instructions);
            w.u64(self.stats.transactions);
            w.u64(self.stats.idle_cycles);
            w.u64(self.stats.ldst_full_stalls);
            w.u64(self.stats.mem_stall_cycles);
            w.u64(self.stats.ctas_completed);
        });
    }

    /// Restores state saved by [`SimtCore::save_snapshot`] into this
    /// already-constructed core. `kernel` must be the kernel that was
    /// running when the snapshot was taken — warp programs are rebuilt
    /// from its coordinates and replayed to their recorded position.
    pub fn restore_snapshot(
        &mut self,
        r: &mut SnapshotReader<'_>,
        kernel: &dyn Kernel,
    ) -> Result<(), SnapshotError> {
        r.section("core", |r| {
            let n_ctas = r.usize()?;
            if n_ctas != self.ctas.len() {
                return Err(SnapshotError::Mismatch {
                    what: format!(
                        "CTA slot count (snapshot {n_ctas}, core {})",
                        self.ctas.len()
                    ),
                });
            }
            for slot in self.ctas.iter_mut() {
                *slot = if r.bool()? {
                    let cta_id = r.usize()?;
                    let threads = r.usize()?;
                    let n = r.usize()?;
                    let mut warp_slots = Vec::with_capacity(n);
                    for _ in 0..n {
                        warp_slots.push(r.usize()?);
                    }
                    Some(CtaState {
                        cta_id,
                        threads,
                        warp_slots,
                        warps_done: r.usize()?,
                        at_barrier: r.usize()?,
                    })
                } else {
                    None
                };
            }
            let n_warps = r.usize()?;
            if n_warps != self.warps.len() {
                return Err(SnapshotError::Mismatch {
                    what: format!(
                        "warp slot count (snapshot {n_warps}, core {})",
                        self.warps.len()
                    ),
                });
            }
            for slot in 0..n_warps {
                if !r.bool()? {
                    self.warps[slot] = None;
                    continue;
                }
                let cta_slot = r.usize()?;
                let state = match r.u8()? {
                    0 => WarpState::Ready,
                    1 => WarpState::ComputeUntil(r.u64()?),
                    2 => WarpState::WaitMem,
                    3 => WarpState::Barrier,
                    4 => WarpState::Done,
                    v => {
                        return Err(SnapshotError::BadValue {
                            what: "warp state".to_string(),
                            value: v as u64,
                        })
                    }
                };
                let outstanding = r.u32()?;
                let age = r.u64()?;
                let ops_pulled = r.u64()?;
                let has_pending = r.bool()?;
                let class = restore_request_class(r)?;
                let (cta_id, warp_in_cta) = {
                    let cta = self
                        .ctas
                        .get(cta_slot)
                        .and_then(|c| c.as_ref())
                        .ok_or_else(|| SnapshotError::Mismatch {
                            what: format!("warp {slot} references empty CTA slot {cta_slot}"),
                        })?;
                    let w = cta
                        .warp_slots
                        .iter()
                        .position(|&s| s == slot)
                        .ok_or_else(|| SnapshotError::Mismatch {
                            what: format!("warp {slot} missing from CTA slot {cta_slot}"),
                        })?;
                    (cta.cta_id, w)
                };
                let mut program = kernel.warp_program(cta_id, warp_in_cta);
                let mut last = None;
                for pulled in 0..ops_pulled {
                    last = program.next_op();
                    if last.is_none() {
                        return Err(SnapshotError::BadValue {
                            what: format!(
                                "warp replay underrun (program ended after {pulled} ops)"
                            ),
                            value: ops_pulled,
                        });
                    }
                }
                let pending_op = if has_pending {
                    Some(last.ok_or_else(|| SnapshotError::Mismatch {
                        what: format!("warp {slot} has a pending op but pulled none"),
                    })?)
                } else {
                    None
                };
                self.warps[slot] = Some(Warp {
                    program,
                    pending_op,
                    cta_slot,
                    state,
                    outstanding,
                    age,
                    ops_pulled,
                    class,
                });
            }
            // Rebuild the ready/compute words from the restored warp
            // states — maintained acceleration state, never serialized
            // (the mesh head-cache pattern).
            self.ready_mask = 0;
            self.compute_mask = 0;
            for (s, w) in self.warps.iter().enumerate() {
                match w.as_ref().map(|w| w.state) {
                    Some(WarpState::Ready) => self.ready_mask |= 1 << s,
                    Some(WarpState::ComputeUntil(_)) => self.compute_mask |= 1 << s,
                    _ => {}
                }
            }
            self.threads_resident = r.usize()?;
            self.l1.restore(r)?;
            let n = r.usize()?;
            self.ldst_queue.clear();
            for _ in 0..n {
                let line = LineAddr::new(r.u64()?);
                let kind = restore_access_kind(r)?;
                let warp = r.usize()?;
                let class = restore_request_class(r)?;
                let (set, tag) = if self.ldst_batch {
                    (self.l1_geom.set_of(line), self.l1_geom.tag_of(line))
                } else {
                    (0, 0)
                };
                self.ldst_queue.push_back(LdstTxn {
                    line,
                    set,
                    tag,
                    kind,
                    warp,
                    class,
                });
            }
            let n_cb = r.usize()?;
            self.copyback_queue.clear();
            for _ in 0..n_cb {
                self.copyback_queue
                    .push_back(MemRequest::restore_payload(r)?);
            }
            self.sched.restore(r)?;
            self.launch_seq = r.u64()?;
            self.stats.instructions = r.u64()?;
            self.stats.mem_instructions = r.u64()?;
            self.stats.transactions = r.u64()?;
            self.stats.idle_cycles = r.u64()?;
            self.stats.ldst_full_stalls = r.u64()?;
            self.stats.mem_stall_cycles = r.u64()?;
            self.stats.ctas_completed = r.u64()?;
            Ok(())
        })
    }

    /// Whether the maintained ready/compute words equal the reference
    /// recomputed from the warp states. Debug-assert only — the hot path
    /// never scans the slot array.
    fn masks_consistent(&self) -> bool {
        let mut ready = 0u64;
        let mut compute = 0u64;
        for (s, w) in self.warps.iter().enumerate() {
            match w.as_ref().map(|w| w.state) {
                Some(WarpState::Ready) => ready |= 1 << s,
                Some(WarpState::ComputeUntil(_)) => compute |= 1 << s,
                _ => {}
            }
        }
        (self.ready_mask, self.compute_mask) == (ready, compute)
    }

    /// Releases a CTA's barrier once every live warp has arrived.
    fn maybe_release_barrier(&mut self, cta_slot: usize) {
        // Split borrows: the CTA entry, the warp table and the ready mask
        // are disjoint fields, so the release loop needs no clone of the
        // slot list.
        let Self {
            warps,
            ctas,
            ready_mask,
            ..
        } = self;
        let Some(cta) = ctas[cta_slot].as_mut() else {
            return;
        };
        if cta.at_barrier == 0 || cta.at_barrier + cta.warps_done != cta.warp_slots.len() {
            return;
        }
        for &s in &cta.warp_slots {
            if let Some(w) = warps[s].as_mut() {
                if w.state == WarpState::Barrier {
                    w.state = WarpState::Ready;
                    *ready_mask |= 1 << s;
                }
            }
        }
        cta.at_barrier = 0;
    }
}
