//! Simulator configuration (the paper's Table 2).

use crate::system::Topology;
use gcache_core::cache::{BypassPlane, CopyBackPlane};
use gcache_core::geometry::{CacheGeometry, GeometryError};
use gcache_core::policy::gcache::{GCache, GCacheConfig};
use gcache_core::policy::lru::Lru;
use gcache_core::policy::pdp::StaticPdp;
use gcache_core::policy::pdp_dyn::{DynamicPdp, DynamicPdpConfig};
use gcache_core::policy::rrip::Rrip;
use gcache_core::policy::PolicyKind;
use std::fmt;

/// Which L1 management policy a design point uses (§5's design names).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum L1PolicyKind {
    /// `BS` — baseline LRU.
    Lru,
    /// `BS-S` — static RRIP with the given RRPV width (paper: 3).
    Srrip {
        /// RRPV width in bits.
        bits: u8,
    },
    /// `GC` — the paper's G-Cache policy.
    GCache(GCacheConfig),
    /// `SPDP-B` — static PDP with bypass at a fixed protection distance.
    StaticPdp {
        /// Protection distance in set accesses.
        pd: u16,
    },
    /// `PDP-3` / `PDP-8` — dynamic PDP.
    DynamicPdp(DynamicPdpConfig),
}

impl L1PolicyKind {
    /// The short design name used in the paper's figures.
    pub fn design_name(&self) -> &'static str {
        match self {
            L1PolicyKind::Lru => "BS",
            L1PolicyKind::Srrip { .. } => "BS-S",
            L1PolicyKind::GCache(_) => "GC",
            L1PolicyKind::StaticPdp { .. } => "SPDP-B",
            L1PolicyKind::DynamicPdp(cfg) => match cfg.counter_bits {
                3 => "PDP-3",
                8 => "PDP-8",
                _ => "PDP-dyn",
            },
        }
    }
}

/// Builds the L1 policy for a design point (enum-dispatched: the hooks
/// run on every cache access, so no `Box<dyn>` vtable on that path).
pub fn make_l1_policy(kind: &L1PolicyKind, geom: &CacheGeometry) -> PolicyKind {
    match kind {
        L1PolicyKind::Lru => Lru::new(geom).into(),
        L1PolicyKind::Srrip { bits } => Rrip::srrip(geom, *bits).into(),
        L1PolicyKind::GCache(cfg) => GCache::new(geom, *cfg).into(),
        L1PolicyKind::StaticPdp { pd } => StaticPdp::new(geom, *pd).into(),
        L1PolicyKind::DynamicPdp(cfg) => DynamicPdp::new(geom, *cfg).into(),
    }
}

/// The shape of the on-chip cache hierarchy — a sweepable design axis.
///
/// `Flat` is Table 2's machine: private L1s talk straight to the L2 banks
/// over the mesh. `SharedL15` interposes a cluster-shared cache level: every
/// `cluster_size` consecutive cores route their memory traffic through one
/// write-through/no-allocate L1.5 sitting on its own mesh node (see
/// [`crate::l15`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Hierarchy {
    /// Private L1s directly over the L2 banks (Table 2's default).
    #[default]
    Flat,
    /// Core clusters with a shared L1.5 between the L1s and the L2.
    SharedL15 {
        /// Cores per cluster (must evenly divide the core count).
        cluster_size: usize,
        /// Capacity of each shared L1.5 in KB (a power of two).
        kb: u64,
    },
}

/// Associativity of the shared L1.5 (fixed organisation, between the L1's
/// 4 ways and the L2 bank's 16).
pub const L15_WAYS: u32 = 8;

impl Hierarchy {
    /// Number of cluster nodes this hierarchy adds to the mesh (0 = flat).
    pub const fn clusters(&self, cores: usize) -> usize {
        match self {
            Hierarchy::Flat => 0,
            Hierarchy::SharedL15 { cluster_size, .. } => cores / *cluster_size,
        }
    }

    /// Short shape label for sweep tables: `flat`, `c4/64KB`.
    pub fn label(&self) -> String {
        match self {
            Hierarchy::Flat => "flat".to_string(),
            Hierarchy::SharedL15 { cluster_size, kb } => format!("c{cluster_size}/{kb}KB"),
        }
    }
}

/// Warp scheduling discipline (§2.2).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum WarpSchedKind {
    /// Loose round-robin (the paper's configuration).
    #[default]
    Lrr,
    /// Greedy-then-oldest.
    Gto,
}

/// GDDR5 timing parameters in DRAM-clock cycles (Table 2's bottom row).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DramTiming {
    /// CAS latency.
    pub t_cl: u32,
    /// Row precharge.
    pub t_rp: u32,
    /// Row cycle (ACT-to-ACT, same bank).
    pub t_rc: u32,
    /// Row active time (ACT-to-PRE minimum).
    pub t_ras: u32,
    /// RAS-to-CAS delay.
    pub t_rcd: u32,
    /// ACT-to-ACT, different banks.
    pub t_rrd: u32,
    /// Data-bus cycles to transfer one 128 B line.
    pub t_burst: u32,
}

impl Default for DramTiming {
    fn default() -> Self {
        // Table 2: GDDR5 1.4 GHz, tCL=12, tRP=12, tRC=40, tRAS=28,
        // tRCD=12, tRRD=6; 128 B over a 32 B/cycle channel = 4 cycles.
        DramTiming {
            t_cl: 12,
            t_rp: 12,
            t_rc: 40,
            t_ras: 28,
            t_rcd: 12,
            t_rrd: 6,
            t_burst: 4,
        }
    }
}

/// Full GPU configuration. [`GpuConfig::fermi`] reproduces Table 2.
#[derive(Clone, Debug)]
pub struct GpuConfig {
    /// Number of SIMT cores.
    pub cores: usize,
    /// Threads per warp (SIMT width).
    pub warp_width: usize,
    /// Maximum resident warps per core.
    pub max_warps_per_core: usize,
    /// Maximum resident threads per core.
    pub max_threads_per_core: usize,
    /// Maximum resident CTAs per core.
    pub max_ctas_per_core: usize,
    /// L1 data cache geometry (per core).
    pub l1_geometry: CacheGeometry,
    /// L1 management policy (the design point under evaluation).
    pub l1_policy: L1PolicyKind,
    /// L1 MSHR entries per core.
    pub l1_mshr_entries: usize,
    /// Maximum merged targets per L1 MSHR entry.
    pub l1_mshr_merge: usize,
    /// L1 policy epoch length in accesses (bypass-switch reset period).
    pub l1_epoch_len: u64,
    /// L1 fill-time class-driven bypass plane (orthogonal to
    /// `l1_policy`); `BypassPlane::Policy` is the pass-through default.
    pub l1_bypass: BypassPlane,
    /// L1 eviction-time clean copy-back plane;
    /// `CopyBackPlane::Policy` (with every built-in policy's default
    /// drop) is the classical behaviour.
    pub l1_copy_back: CopyBackPlane,
    /// Number of memory partitions (L2 banks / memory controllers).
    pub partitions: usize,
    /// Geometry of each L2 bank.
    pub l2_geometry: CacheGeometry,
    /// L2 MSHR entries per bank.
    pub l2_mshr_entries: usize,
    /// Maximum merged targets per L2 MSHR entry.
    pub l2_mshr_merge: usize,
    /// Core cycles between L2 bank ticks (2 models the 700 MHz L2 under a
    /// 1.4 GHz core clock).
    pub l2_period: u64,
    /// L2 pipeline latency in core cycles (tag + data access).
    pub l2_latency: u64,
    /// Victim-bit sharing factor `S_v` (1 = private bit per core).
    pub victim_bit_share: usize,
    /// Shape of the cache hierarchy (flat, or cluster-shared L1.5s).
    pub hierarchy: Hierarchy,
    /// L1.5 pipeline latency in core cycles (tag + data access); only
    /// meaningful under [`Hierarchy::SharedL15`].
    pub l15_latency: u64,
    /// Transfer ports per lane of each cluster's core↔L1.5 crossbar; only
    /// meaningful under [`Hierarchy::SharedL15`]. `1` (the default) keeps
    /// the legacy wiring through the cluster's single mesh injection port —
    /// the serialization-equivalent setting, bit-identical to the
    /// pre-crossbar model — while `≥ 2` interposes a
    /// [`crate::xbar::ClusterXbar`] so intra-cluster traffic no longer
    /// funnels through one port.
    pub cluster_ports: usize,
    /// Mesh width (nodes per row); cores then partitions are placed
    /// row-major. `mesh_width × mesh_height ≥ cores + partitions`.
    pub mesh_width: usize,
    /// Mesh height.
    pub mesh_height: usize,
    /// Channel width in bytes (flit size).
    pub channel_bytes: u32,
    /// Router input-queue depth in packets.
    pub router_queue: usize,
    /// Per-hop router latency in core cycles.
    pub hop_latency: u64,
    /// DRAM banks per memory controller.
    pub dram_banks: usize,
    /// DRAM row size in bytes.
    pub dram_row_bytes: u32,
    /// DRAM controller queue depth.
    pub dram_queue: usize,
    /// GDDR5 timing.
    pub dram_timing: DramTiming,
    /// Warp scheduler.
    pub warp_sched: WarpSchedKind,
    /// Scratchpad (shared-memory) access latency in core cycles.
    pub shared_latency: u32,
    /// Atomic-operation-unit service time per access, in core cycles.
    pub atomic_latency: u64,
    /// Hard cap on simulated cycles (guards against livelock); `run_kernel`
    /// errors out beyond this.
    pub max_cycles: u64,
    /// Skip provably idle cycles by jumping the global clock to the next
    /// component event (see `clocked`'s module docs). Results are
    /// bit-identical either way; disable to cross-check or to profile the
    /// plain cycle loop.
    pub fast_forward: bool,
    /// Decode each warp's coalesced lines into (set, tag) as one batch at
    /// issue time and present them to the L1 through the pre-decoded
    /// controller entry point. Results are bit-identical either way;
    /// disable (`--no-ldst-batch` on the experiment binaries) to
    /// cross-check against the per-access decode path.
    pub ldst_batch: bool,
}

impl GpuConfig {
    /// The paper's baseline configuration (Table 2): 16 cores, 32 KB 4-way
    /// L1s, 8 × 128 KB 16-way L2 banks, 2D mesh, FR-FCFS GDDR5.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError`] if the cache shapes are invalid (they are
    /// not, for the built-in constants — the error type is exposed so
    /// callers tweaking geometries get validation for free).
    pub fn fermi() -> Result<Self, GeometryError> {
        Ok(GpuConfig {
            cores: 16,
            warp_width: 32,
            max_warps_per_core: 48,
            max_threads_per_core: 1536,
            max_ctas_per_core: 8,
            l1_geometry: CacheGeometry::new(32 * 1024, 4, 128)?,
            l1_policy: L1PolicyKind::Lru,
            l1_mshr_entries: 32,
            l1_mshr_merge: 8,
            l1_epoch_len: 512,
            l1_bypass: BypassPlane::Policy,
            l1_copy_back: CopyBackPlane::Policy,
            partitions: 8,
            l2_geometry: CacheGeometry::new(128 * 1024, 16, 128)?,
            l2_mshr_entries: 32,
            l2_mshr_merge: 8,
            l2_period: 2,
            l2_latency: 24,
            victim_bit_share: 1,
            hierarchy: Hierarchy::Flat,
            l15_latency: 12,
            cluster_ports: 1,
            mesh_width: 6,
            mesh_height: 4,
            channel_bytes: 32,
            router_queue: 8,
            hop_latency: 2,
            dram_banks: 4,
            dram_row_bytes: 2048,
            dram_queue: 32,
            dram_timing: DramTiming::default(),
            warp_sched: WarpSchedKind::Lrr,
            shared_latency: 2,
            atomic_latency: 4,
            max_cycles: 200_000_000,
            fast_forward: true,
            ldst_batch: true,
        })
    }

    /// Same as [`GpuConfig::fermi`] but with the given L1 policy — the
    /// one-liner the experiment harness uses for each design point.
    ///
    /// # Errors
    ///
    /// See [`GpuConfig::fermi`].
    pub fn fermi_with_policy(policy: L1PolicyKind) -> Result<Self, GeometryError> {
        let mut cfg = GpuConfig::fermi()?;
        cfg.l1_policy = policy;
        Ok(cfg)
    }

    /// Replaces the per-core L1 with a cache of `kb` KB (same 4-way, 128 B
    /// organisation) — used by the Figure 3/4/10 size sweeps.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError`] if `kb` is not a power of two ≥ 1.
    pub fn with_l1_kb(mut self, kb: u64) -> Result<Self, GeometryError> {
        self.l1_geometry = CacheGeometry::new(kb * 1024, 4, 128)?;
        Ok(self)
    }

    /// This configuration with a different L1 fill-time bypass plane.
    #[must_use]
    pub const fn with_l1_bypass(mut self, bypass: BypassPlane) -> Self {
        self.l1_bypass = bypass;
        self
    }

    /// This configuration with a different L1 clean copy-back plane.
    #[must_use]
    pub const fn with_l1_copy_back(mut self, copy_back: CopyBackPlane) -> Self {
        self.l1_copy_back = copy_back;
        self
    }

    /// Reshapes the cache hierarchy, growing the mesh as needed to seat
    /// the cluster nodes. `Hierarchy::Flat` is a no-op, so threading a
    /// hierarchy through an experiment grid is behaviour-preserving for
    /// flat points.
    ///
    /// # Errors
    ///
    /// Returns a descriptive message if `cluster_size` does not evenly
    /// divide the core count, nests incompatibly with `victim_bit_share`,
    /// or the L1.5 capacity is not a valid cache geometry.
    pub fn with_hierarchy(mut self, hierarchy: Hierarchy) -> Result<Self, String> {
        if let Hierarchy::SharedL15 { cluster_size, kb } = hierarchy {
            if cluster_size == 0 || !self.cores.is_multiple_of(cluster_size) {
                return Err(format!(
                    "cluster size {cluster_size} must evenly divide the {} cores",
                    self.cores
                ));
            }
            let share = self.victim_bit_share;
            if !share.is_multiple_of(cluster_size) && !cluster_size.is_multiple_of(share) {
                return Err(format!(
                    "victim_bit_share {share} and cluster_size {cluster_size} must nest \
                     (one must evenly divide the other)"
                ));
            }
            CacheGeometry::new(kb * 1024, L15_WAYS, self.line_size())
                .map_err(|e| format!("invalid L1.5 capacity {kb} KB: {e}"))?;
            let nodes = self.cores + self.partitions + self.cores / cluster_size;
            while self.mesh_width * self.mesh_height < nodes {
                self.mesh_height += 1;
            }
        }
        self.hierarchy = hierarchy;
        Ok(self)
    }

    /// Sets the per-lane transfer port count of the cluster crossbars
    /// (see [`GpuConfig::cluster_ports`]). A no-op for flat hierarchies,
    /// and `1` is the legacy serialization-equivalent wiring, so threading
    /// this through an experiment grid is behaviour-preserving for
    /// non-crossbar points.
    ///
    /// # Errors
    ///
    /// Returns a descriptive message when `ports` is zero.
    pub fn with_cluster_ports(mut self, ports: usize) -> Result<Self, String> {
        if ports == 0 {
            return Err("cluster_ports must be at least 1".to_string());
        }
        self.cluster_ports = ports;
        Ok(self)
    }

    /// The geometry of each shared L1.5, `None` on the flat machine.
    ///
    /// # Panics
    ///
    /// Panics if the configured capacity is invalid —
    /// [`GpuConfig::with_hierarchy`] and [`GpuConfig::validate`] reject
    /// such shapes up front.
    pub fn l15_geometry(&self) -> Option<CacheGeometry> {
        match self.hierarchy {
            Hierarchy::Flat => None,
            Hierarchy::SharedL15 { kb, .. } => Some(
                CacheGeometry::new(kb * 1024, L15_WAYS, self.line_size())
                    .expect("validated L1.5 geometry"),
            ),
        }
    }

    /// Line size shared by the whole hierarchy.
    pub fn line_size(&self) -> u32 {
        self.l1_geometry.line_size()
    }

    /// The node placement on the mesh — topology as data: cores occupy
    /// nodes `0..cores` row-major, partitions the next `partitions` nodes,
    /// and (under [`Hierarchy::SharedL15`]) cluster nodes follow the
    /// partitions. The cluster map assigns `cluster_size` consecutive
    /// cores to each cluster, so the cores of one cluster are contiguous
    /// on the mesh. Components address each other through this table (see
    /// [`crate::system`]), so alternative placements only change this
    /// method.
    pub fn topology(&self) -> Topology {
        let parts_end = self.cores + self.partitions;
        let (cluster_of, cluster_nodes) = match self.hierarchy {
            Hierarchy::Flat => ((0..self.cores).collect(), Vec::new()),
            Hierarchy::SharedL15 { cluster_size, .. } => (
                (0..self.cores).map(|c| c / cluster_size).collect(),
                (parts_end..parts_end + self.hierarchy.clusters(self.cores)).collect(),
            ),
        };
        Topology {
            mesh_width: self.mesh_width,
            mesh_height: self.mesh_height,
            core_nodes: (0..self.cores).collect(),
            part_nodes: (self.cores..parts_end).collect(),
            cluster_of,
            cluster_nodes,
        }
    }

    /// Validates cross-field invariants.
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message on an inconsistent configuration;
    /// call at construction time of the GPU.
    pub fn validate(&self) {
        assert!(self.cores > 0, "need at least one core");
        assert!(self.partitions > 0, "need at least one partition");
        assert!(
            self.partitions.is_power_of_two(),
            "partition count must be a power of two"
        );
        assert!(
            self.warp_width > 0 && self.warp_width <= 64,
            "warp width must be 1..=64"
        );
        assert!(self.max_warps_per_core > 0, "need at least one warp slot");
        assert!(
            self.victim_bit_share > 0 && self.cores.is_multiple_of(self.victim_bit_share),
            "victim_bit_share {} must evenly divide the {} cores",
            self.victim_bit_share,
            self.cores
        );
        if let Hierarchy::SharedL15 { cluster_size, kb } = self.hierarchy {
            assert!(
                cluster_size > 0 && self.cores.is_multiple_of(cluster_size),
                "cluster size {cluster_size} must evenly divide the {} cores",
                self.cores
            );
            assert!(
                self.victim_bit_share.is_multiple_of(cluster_size)
                    || cluster_size.is_multiple_of(self.victim_bit_share),
                "victim_bit_share {} and cluster_size {cluster_size} must nest",
                self.victim_bit_share
            );
            assert!(
                CacheGeometry::new(kb * 1024, L15_WAYS, self.line_size()).is_ok(),
                "invalid L1.5 capacity {kb} KB"
            );
        }
        assert!(self.cluster_ports > 0, "cluster_ports must be at least 1");
        let nodes = self.cores + self.partitions + self.hierarchy.clusters(self.cores);
        assert!(
            self.mesh_width * self.mesh_height >= nodes,
            "mesh too small: {}x{} < {} nodes",
            self.mesh_width,
            self.mesh_height,
            nodes
        );
        assert_eq!(
            self.l1_geometry.line_size(),
            self.l2_geometry.line_size(),
            "L1 and L2 must share a line size"
        );
        assert!(
            self.dram_row_bytes >= self.line_size(),
            "DRAM row smaller than a line"
        );
        assert!(self.l2_period > 0, "l2_period must be positive");
        assert!(self.max_cycles > 0, "max_cycles must be positive");
    }
}

impl fmt::Display for GpuConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "SIMT cores        : {} (x{} SIMT width)",
            self.cores, self.warp_width
        )?;
        writeln!(
            f,
            "Resources / core  : {} threads, {} warps, {} CTAs",
            self.max_threads_per_core, self.max_warps_per_core, self.max_ctas_per_core
        )?;
        writeln!(
            f,
            "L1D / core        : {} [{}]",
            self.l1_geometry,
            self.l1_policy.design_name()
        )?;
        if let Hierarchy::SharedL15 { cluster_size, kb } = self.hierarchy {
            writeln!(
                f,
                "L1.5 / cluster    : {} KB x{} clusters ({} cores each)",
                kb,
                self.hierarchy.clusters(self.cores),
                cluster_size
            )?;
        }
        writeln!(
            f,
            "L2 bank           : {} x{} banks, 1:{} clock",
            self.l2_geometry, self.partitions, self.l2_period
        )?;
        writeln!(
            f,
            "MSHRs             : {}/core, {}/bank",
            self.l1_mshr_entries, self.l2_mshr_entries
        )?;
        writeln!(
            f,
            "Interconnect      : {}x{} mesh, {}B channels",
            self.mesh_width, self.mesh_height, self.channel_bytes
        )?;
        writeln!(
            f,
            "DRAM              : FR-FCFS, {} MCs x {} banks, {}B rows",
            self.partitions, self.dram_banks, self.dram_row_bytes
        )?;
        let t = self.dram_timing;
        write!(
            f,
            "GDDR5 timing      : tCL={} tRP={} tRC={} tRAS={} tRCD={} tRRD={}",
            t.t_cl, t.t_rp, t.t_rc, t.t_ras, t.t_rcd, t.t_rrd
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fermi_matches_table_2() {
        let c = GpuConfig::fermi().unwrap();
        c.validate();
        assert_eq!(c.cores, 16);
        assert_eq!(c.warp_width, 32);
        assert_eq!(c.max_warps_per_core, 48);
        assert_eq!(c.max_threads_per_core, 1536);
        assert_eq!(c.l1_geometry.total_bytes(), 32 * 1024);
        assert_eq!(c.l1_geometry.ways(), 4);
        assert_eq!(c.l2_geometry.total_bytes(), 128 * 1024);
        assert_eq!(c.l2_geometry.ways(), 16);
        assert_eq!(c.partitions, 8);
        assert_eq!(c.l1_mshr_entries, 32);
        assert_eq!(c.dram_timing, DramTiming::default());
    }

    #[test]
    fn design_names() {
        assert_eq!(L1PolicyKind::Lru.design_name(), "BS");
        assert_eq!(L1PolicyKind::Srrip { bits: 3 }.design_name(), "BS-S");
        assert_eq!(
            L1PolicyKind::GCache(GCacheConfig::default()).design_name(),
            "GC"
        );
        assert_eq!(L1PolicyKind::StaticPdp { pd: 14 }.design_name(), "SPDP-B");
        assert_eq!(
            L1PolicyKind::DynamicPdp(DynamicPdpConfig::pdp3()).design_name(),
            "PDP-3"
        );
        assert_eq!(
            L1PolicyKind::DynamicPdp(DynamicPdpConfig::pdp8()).design_name(),
            "PDP-8"
        );
    }

    #[test]
    fn l1_size_sweep_builder() {
        let c = GpuConfig::fermi().unwrap().with_l1_kb(64).unwrap();
        assert_eq!(c.l1_geometry.total_bytes(), 64 * 1024);
        assert_eq!(c.l1_geometry.ways(), 4);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "mesh too small")]
    fn validate_rejects_small_mesh() {
        let mut c = GpuConfig::fermi().unwrap();
        c.mesh_width = 2;
        c.mesh_height = 2;
        c.validate();
    }

    #[test]
    fn with_hierarchy_flat_is_identity() {
        let c = GpuConfig::fermi()
            .unwrap()
            .with_hierarchy(Hierarchy::Flat)
            .unwrap();
        assert_eq!(c.hierarchy, Hierarchy::Flat);
        assert_eq!((c.mesh_width, c.mesh_height), (6, 4));
        c.validate();
    }

    #[test]
    fn with_hierarchy_grows_mesh_for_cluster_nodes() {
        let h = Hierarchy::SharedL15 {
            cluster_size: 4,
            kb: 64,
        };
        let c = GpuConfig::fermi().unwrap().with_hierarchy(h).unwrap();
        assert_eq!(c.hierarchy, h);
        // 16 cores + 8 partitions + 4 clusters = 28 nodes > 6x4.
        assert!(c.mesh_width * c.mesh_height >= 28);
        c.validate();
        assert_eq!(c.l15_geometry().unwrap().total_bytes(), 64 * 1024);
    }

    #[test]
    fn with_hierarchy_rejects_non_dividing_cluster_size() {
        let h = Hierarchy::SharedL15 {
            cluster_size: 5,
            kb: 64,
        };
        let err = GpuConfig::fermi().unwrap().with_hierarchy(h).unwrap_err();
        assert!(err.contains("evenly divide"), "got: {err}");
        let h = Hierarchy::SharedL15 {
            cluster_size: 0,
            kb: 64,
        };
        assert!(GpuConfig::fermi().unwrap().with_hierarchy(h).is_err());
    }

    #[test]
    fn with_hierarchy_rejects_incompatible_share() {
        // Sharing factor 6 neither divides nor is divided by cluster size
        // 4: victim-bit groups would straddle cluster boundaries.
        let mut c = GpuConfig::fermi().unwrap();
        c.victim_bit_share = 6;
        let h = Hierarchy::SharedL15 {
            cluster_size: 4,
            kb: 64,
        };
        let err = c.with_hierarchy(h).unwrap_err();
        assert!(err.contains("nest"), "got: {err}");
    }

    #[test]
    #[should_panic(expected = "victim_bit_share")]
    fn validate_rejects_non_dividing_share() {
        let mut c = GpuConfig::fermi().unwrap();
        c.victim_bit_share = 3; // does not divide 16
        c.validate();
    }

    #[test]
    fn hierarchy_labels() {
        assert_eq!(Hierarchy::Flat.label(), "flat");
        assert_eq!(
            Hierarchy::SharedL15 {
                cluster_size: 4,
                kb: 64
            }
            .label(),
            "c4/64KB"
        );
        assert_eq!(Hierarchy::Flat.clusters(16), 0);
        assert_eq!(
            Hierarchy::SharedL15 {
                cluster_size: 8,
                kb: 32
            }
            .clusters(16),
            2
        );
    }

    #[test]
    fn display_mentions_key_fields() {
        let c = GpuConfig::fermi().unwrap();
        let s = c.to_string();
        assert!(s.contains("16"));
        assert!(s.contains("FR-FCFS"));
        assert!(s.contains("tCL=12"));
    }
}
