//! Memory-system messages flowing between cores and partitions.

use gcache_core::addr::{CoreId, LineAddr, PartitionId};
use gcache_core::policy::{AccessKind, RequestClass};
use gcache_core::snapshot::{SnapshotError, SnapshotPayload, SnapshotReader, SnapshotWriter};

/// Stable wire encoding for [`AccessKind`] inside snapshots.
pub(crate) fn save_access_kind(w: &mut SnapshotWriter, kind: AccessKind) {
    w.u8(match kind {
        AccessKind::Read => 0,
        AccessKind::Write => 1,
        AccessKind::Atomic => 2,
        AccessKind::CopyBack => 3,
    });
}

/// Inverse of [`save_access_kind`].
pub(crate) fn restore_access_kind(r: &mut SnapshotReader<'_>) -> Result<AccessKind, SnapshotError> {
    match r.u8()? {
        0 => Ok(AccessKind::Read),
        1 => Ok(AccessKind::Write),
        2 => Ok(AccessKind::Atomic),
        3 => Ok(AccessKind::CopyBack),
        v => Err(SnapshotError::BadValue {
            what: "access kind".to_string(),
            value: v as u64,
        }),
    }
}

/// Stable wire encoding for an optional [`RequestClass`] inside snapshots.
pub(crate) fn save_request_class(w: &mut SnapshotWriter, class: Option<RequestClass>) {
    w.u8(RequestClass::to_wire(class));
}

/// Inverse of [`save_request_class`].
pub(crate) fn restore_request_class(
    r: &mut SnapshotReader<'_>,
) -> Result<Option<RequestClass>, SnapshotError> {
    RequestClass::from_wire(r.u8()?).map_err(|v| SnapshotError::BadValue {
        what: "request class".to_string(),
        value: v as u64,
    })
}

/// A core-local warp slot index, used to wake the right warp when its
/// memory transactions return.
pub type WarpSlot = usize;

/// A request travelling from an L1 towards a memory partition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemRequest {
    /// Requested line.
    pub line: LineAddr,
    /// Access kind. Reads and atomics generate a response; stores and
    /// clean copy-backs are fire-and-forget.
    pub kind: AccessKind,
    /// Requesting core.
    pub core: CoreId,
    /// Warp to wake on response (meaningless for stores).
    pub warp: WarpSlot,
    /// Request class the issuing warp declared (deadline slack + declared
    /// reuse); `None` for unclassified traffic.
    pub class: Option<RequestClass>,
}

impl MemRequest {
    /// Whether the partition must send a response back.
    pub fn wants_response(&self) -> bool {
        !matches!(self.kind, AccessKind::Write | AccessKind::CopyBack)
    }

    /// Payload size in bytes as seen by the interconnect: stores and clean
    /// copy-backs carry the line's data plus a header; reads and atomics
    /// are header-only.
    pub fn packet_bytes(&self, line_size: u32) -> u32 {
        match self.kind {
            AccessKind::Write | AccessKind::CopyBack => line_size + 8,
            AccessKind::Read => 8,
            AccessKind::Atomic => 16,
        }
    }
}

impl SnapshotPayload for MemRequest {
    fn save_payload(&self, w: &mut SnapshotWriter) {
        w.u64(self.line.raw());
        save_access_kind(w, self.kind);
        w.usize(self.core.index());
        w.usize(self.warp);
        save_request_class(w, self.class);
    }

    fn restore_payload(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(MemRequest {
            line: LineAddr::new(r.u64()?),
            kind: restore_access_kind(r)?,
            core: CoreId(r.usize()?),
            warp: r.usize()?,
            class: restore_request_class(r)?,
        })
    }
}

/// A response travelling from a memory partition back to a core.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemResponse {
    /// The line whose data is returning.
    pub line: LineAddr,
    /// Original access kind (read or atomic).
    pub kind: AccessKind,
    /// Destination core.
    pub core: CoreId,
    /// Warp to wake.
    pub warp: WarpSlot,
    /// G-Cache victim hint observed by the L2 (see
    /// [`gcache_core::victim_bits`]); travels with the data at no extra
    /// traffic cost (§4.3).
    pub victim_hint: bool,
    /// The primary requester's declared class, echoed back so the L1's
    /// fill decision sees it without any MSHR-side storage.
    pub class: Option<RequestClass>,
}

impl MemResponse {
    /// Payload size in bytes: read responses carry the line, atomic
    /// responses carry the old values (lane-sized, bounded by a line).
    pub fn packet_bytes(&self, line_size: u32) -> u32 {
        match self.kind {
            AccessKind::Atomic => 8 + line_size / 4,
            _ => line_size + 8,
        }
    }
}

impl SnapshotPayload for MemResponse {
    fn save_payload(&self, w: &mut SnapshotWriter) {
        w.u64(self.line.raw());
        save_access_kind(w, self.kind);
        w.usize(self.core.index());
        w.usize(self.warp);
        w.bool(self.victim_hint);
        save_request_class(w, self.class);
    }

    fn restore_payload(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(MemResponse {
            line: LineAddr::new(r.u64()?),
            kind: restore_access_kind(r)?,
            core: CoreId(r.usize()?),
            warp: r.usize()?,
            victim_hint: r.bool()?,
            class: restore_request_class(r)?,
        })
    }
}

/// Maps a line address to its memory partition by low line-address bits —
/// consecutive lines interleave across partitions, spreading streams
/// evenly (the standard GPGPU-Sim mapping).
pub fn partition_of(line: LineAddr, partitions: usize) -> PartitionId {
    debug_assert!(partitions.is_power_of_two());
    PartitionId((line.raw() & (partitions as u64 - 1)) as usize)
}

/// The line address as seen by a partition-local L2 bank: the partition
/// bits are stripped so each bank indexes its full set range.
pub fn partition_local_line(line: LineAddr, partitions: usize) -> LineAddr {
    LineAddr::new(line.raw() >> partitions.trailing_zeros())
}

/// Inverse of [`partition_local_line`] given the partition id.
pub fn global_line(local: LineAddr, part: PartitionId, partitions: usize) -> LineAddr {
    LineAddr::new((local.raw() << partitions.trailing_zeros()) | part.index() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consecutive_lines_interleave() {
        let p: Vec<_> = (0..16)
            .map(|l| partition_of(LineAddr::new(l), 8).index())
            .collect();
        assert_eq!(p, vec![0, 1, 2, 3, 4, 5, 6, 7, 0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn local_line_round_trip() {
        for raw in [0u64, 7, 8, 0x1234, 0xffff_ffff] {
            let line = LineAddr::new(raw);
            let part = partition_of(line, 8);
            let local = partition_local_line(line, 8);
            assert_eq!(global_line(local, part, 8), line);
        }
    }

    #[test]
    fn packet_sizes() {
        let read = MemRequest {
            line: LineAddr::new(0),
            kind: AccessKind::Read,
            core: CoreId(0),
            warp: 0,
            class: None,
        };
        let write = MemRequest {
            kind: AccessKind::Write,
            ..read
        };
        let atomic = MemRequest {
            kind: AccessKind::Atomic,
            ..read
        };
        let copy_back = MemRequest {
            kind: AccessKind::CopyBack,
            ..read
        };
        assert_eq!(read.packet_bytes(128), 8);
        assert_eq!(write.packet_bytes(128), 136);
        assert_eq!(atomic.packet_bytes(128), 16);
        assert_eq!(copy_back.packet_bytes(128), 136, "carries line data");
        assert!(read.wants_response());
        assert!(!write.wants_response());
        assert!(atomic.wants_response());
        assert!(!copy_back.wants_response());

        let resp = MemResponse {
            line: LineAddr::new(0),
            kind: AccessKind::Read,
            core: CoreId(0),
            warp: 0,
            victim_hint: false,
            class: None,
        };
        assert_eq!(resp.packet_bytes(128), 136);
        let at = MemResponse {
            kind: AccessKind::Atomic,
            ..resp
        };
        assert_eq!(at.packet_bytes(128), 40);
    }
}
