//! Randomised-property tests of the simulator substrates: the mesh never
//! loses or duplicates packets, the DRAM model completes everything with
//! sane timing, and the coalescer is a proper set-partition of active
//! lanes.
//!
//! Each test replays seeded random cases through the dependency-free
//! [`gcache_core::rng::SmallRng`], so failures reproduce exactly.

use gcache_core::addr::{Addr, LineAddr};
use gcache_core::rng::SmallRng;
use gcache_sim::coalescer::coalesce;
use gcache_sim::config::DramTiming;
use gcache_sim::dram::Dram;
use gcache_sim::icnt::Mesh;

const CASES: u64 = 48;

/// Every injected packet is delivered exactly once, to the right node,
/// regardless of traffic pattern.
#[test]
fn mesh_delivers_everything_exactly_once() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x5eed_1001 ^ case);
        let width = rng.gen_range(3..5) as usize;
        let height = 3;
        let nodes = width * height;
        let n = rng.gen_range(1..150) as usize;
        let sends: Vec<(usize, usize, u32)> = (0..n)
            .map(|_| {
                (
                    rng.gen_range(0..nodes as u64) as usize,
                    rng.gen_range(0..nodes as u64) as usize,
                    rng.gen_range(1..6) as u32,
                )
            })
            .collect();
        let mut mesh: Mesh<usize> = Mesh::new(width, height, 4, 2, 1);
        let mut pending: Vec<(usize, usize, u32, usize)> = sends
            .iter()
            .enumerate()
            .map(|(id, &(s, d, f))| (s, d, f, id))
            .collect();
        let total = pending.len();
        let mut got: Vec<Option<usize>> = vec![None; total]; // delivered at node
        let mut delivered = 0usize;
        let mut now = 0u64;
        while delivered < total {
            now += 1;
            assert!(now < 1_000_000, "case {case}: mesh livelock");
            pending.retain(|&(s, d, f, id)| mesh.inject_at(s, d, f, id, now).is_err());
            mesh.tick(now);
            for node in 0..nodes {
                while let Some(id) = mesh.eject(node) {
                    assert!(
                        got[id].is_none(),
                        "case {case}: packet {id} delivered twice"
                    );
                    got[id] = Some(node);
                    delivered += 1;
                }
            }
        }
        for (id, &(_, d, _)) in sends.iter().enumerate() {
            assert_eq!(got[id], Some(d), "case {case}: packet {id} misrouted");
        }
        assert!(mesh.is_idle(), "case {case}");
    }
}

/// The DRAM model completes every request, each no earlier than the
/// unloaded minimum latency, and row-hit counting is consistent.
#[test]
fn dram_completes_everything() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x5eed_1002 ^ case);
        let n = rng.gen_range(1..100) as usize;
        let reqs: Vec<(u64, bool)> = (0..n)
            .map(|_| (rng.gen_range(0..4096), rng.gen_bool(0.5)))
            .collect();
        let timing = DramTiming::default();
        let mut dram: Dram<usize> = Dram::new(timing, 4, 2048, 16, 128);
        let mut sent = 0usize;
        let mut arrive = vec![0u64; reqs.len()];
        let mut done = vec![false; reqs.len()];
        let mut completed = 0usize;
        let mut now = 0u64;
        while completed < reqs.len() {
            now += 1;
            assert!(now < 1_000_000, "case {case}: dram livelock");
            while sent < reqs.len() && dram.can_accept() {
                let (line, write) = reqs[sent];
                dram.enqueue(LineAddr::new(line), write, sent, now).unwrap();
                arrive[sent] = now;
                sent += 1;
            }
            dram.tick(now);
            while let Some(id) = dram.pop_completed(now) {
                assert!(!done[id], "case {case}: request {id} completed twice");
                done[id] = true;
                completed += 1;
                let min = (timing.t_cl + timing.t_burst) as u64;
                assert!(
                    now >= arrive[id] + min,
                    "case {case}: request {id} completed too fast"
                );
            }
        }
        assert!(dram.is_idle(), "case {case}");
        let s = dram.stats();
        assert_eq!(s.reads + s.writes, reqs.len() as u64, "case {case}");
        assert_eq!(
            s.row_hits + s.row_opens + s.row_conflicts,
            reqs.len() as u64,
            "case {case}"
        );
    }
}

/// Coalescing partitions the active lanes: every active lane's line is in
/// the output, the output has no duplicates, and it never exceeds the
/// active lane count.
#[test]
fn coalescer_is_a_partition() {
    for case in 0..CASES * 4 {
        let mut rng = SmallRng::seed_from_u64(0x5eed_1003 ^ case);
        let n = rng.gen_range(0..33) as usize;
        let addrs: Vec<Option<Addr>> = (0..n)
            .map(|_| {
                rng.gen_bool(0.8)
                    .then(|| Addr::new(rng.gen_range(0..1_000_000)))
            })
            .collect();
        let out = coalesce(&addrs, 128);
        let active: Vec<LineAddr> = addrs.iter().flatten().map(|a| a.to_line(128)).collect();
        for l in &active {
            assert!(out.contains(l), "case {case}: active lane's line missing");
        }
        for l in &out {
            assert!(active.contains(l), "case {case}: phantom line in output");
        }
        let mut dedup = out.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(
            dedup.len(),
            out.len(),
            "case {case}: duplicate transactions"
        );
        assert!(out.len() <= active.len(), "case {case}");
    }
}
