//! Property-based tests of the simulator substrates: the mesh never loses
//! or duplicates packets, the DRAM model completes everything with sane
//! timing, and the coalescer is a proper set-partition of active lanes.

use gcache_core::addr::{Addr, LineAddr};
use gcache_sim::coalescer::coalesce;
use gcache_sim::config::DramTiming;
use gcache_sim::dram::Dram;
use gcache_sim::icnt::Mesh;
use proptest::prelude::*;

proptest! {
    /// Every injected packet is delivered exactly once, to the right node,
    /// regardless of traffic pattern.
    #[test]
    fn mesh_delivers_everything_exactly_once(
        sends in proptest::collection::vec((0usize..12, 0usize..12, 1u32..6), 1..150),
        width in 3usize..5,
    ) {
        let height = 3;
        let nodes = width * height;
        let mut mesh: Mesh<usize> = Mesh::new(width, height, 4, 2, 1);
        let mut pending: Vec<(usize, usize, u32, usize)> = sends
            .iter()
            .enumerate()
            .map(|(id, &(s, d, f))| (s % nodes, d % nodes, f, id))
            .collect();
        let total = pending.len();
        let mut got: Vec<Option<usize>> = vec![None; total]; // delivered at node
        let mut delivered = 0usize;
        let mut now = 0u64;
        while delivered < total {
            now += 1;
            prop_assert!(now < 1_000_000, "mesh livelock");
            pending.retain(|&(s, d, f, id)| mesh.inject_at(s, d, f, id, now).is_err());
            mesh.tick(now);
            for n in 0..nodes {
                while let Some(id) = mesh.eject(n) {
                    prop_assert!(got[id].is_none(), "packet {} delivered twice", id);
                    got[id] = Some(n);
                    delivered += 1;
                }
            }
        }
        for (id, &(_, d, _)) in sends.iter().enumerate() {
            prop_assert_eq!(got[id], Some(d % nodes), "packet {} misrouted", id);
        }
        prop_assert!(mesh.is_idle());
    }

    /// The DRAM model completes every request, each no earlier than the
    /// unloaded minimum latency, and row-hit counting is consistent.
    #[test]
    fn dram_completes_everything(
        reqs in proptest::collection::vec((0u64..4096, any::<bool>()), 1..100),
    ) {
        let timing = DramTiming::default();
        let mut dram: Dram<usize> = Dram::new(timing, 4, 2048, 16, 128);
        let mut sent = 0usize;
        let mut arrive = vec![0u64; reqs.len()];
        let mut done = vec![false; reqs.len()];
        let mut completed = 0usize;
        let mut now = 0u64;
        while completed < reqs.len() {
            now += 1;
            prop_assert!(now < 1_000_000, "dram livelock");
            while sent < reqs.len() && dram.can_accept() {
                let (line, write) = reqs[sent];
                dram.enqueue(LineAddr::new(line), write, sent, now).unwrap();
                arrive[sent] = now;
                sent += 1;
            }
            dram.tick(now);
            while let Some(id) = dram.pop_completed(now) {
                prop_assert!(!done[id], "request {} completed twice", id);
                done[id] = true;
                completed += 1;
                let min = (timing.t_cl + timing.t_burst) as u64;
                prop_assert!(now >= arrive[id] + min, "request {} completed too fast", id);
            }
        }
        prop_assert!(dram.is_idle());
        let s = dram.stats();
        prop_assert_eq!(s.reads + s.writes, reqs.len() as u64);
        prop_assert_eq!(s.row_hits + s.row_opens + s.row_conflicts, reqs.len() as u64);
    }

    /// Coalescing partitions the active lanes: every active lane's line is
    /// in the output, the output has no duplicates, and it never exceeds
    /// the active lane count.
    #[test]
    fn coalescer_is_a_partition(
        lanes in proptest::collection::vec(proptest::option::of(0u64..1_000_000), 0..32),
    ) {
        let addrs: Vec<Option<Addr>> = lanes.iter().map(|o| o.map(Addr::new)).collect();
        let out = coalesce(&addrs, 128);
        let active: Vec<LineAddr> =
            addrs.iter().flatten().map(|a| a.to_line(128)).collect();
        for l in &active {
            prop_assert!(out.contains(l), "active lane's line missing");
        }
        for l in &out {
            prop_assert!(active.contains(l), "phantom line in output");
        }
        let mut dedup = out.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), out.len(), "duplicate transactions");
        prop_assert!(out.len() <= active.len());
    }
}
