//! End-to-end integration tests of the GPU timing simulator: whole-kernel
//! runs exercising cores, schedulers, coalescing, both meshes, L2 banks,
//! victim bits and DRAM together.

use gcache_core::addr::Addr;
use gcache_core::policy::gcache::GCacheConfig;
use gcache_core::policy::pdp_dyn::DynamicPdpConfig;
use gcache_sim::config::{GpuConfig, Hierarchy, L1PolicyKind, WarpSchedKind};
use gcache_sim::gpu::Gpu;
use gcache_sim::isa::{GridDim, Kernel, Op, TraceProgram, WarpProgram};
use gcache_sim::stats::SimStats;

/// A kernel built from a closure: `(cta, warp) -> Vec<Op>`.
struct FnKernel<F: Fn(usize, usize) -> Vec<Op> + Send + Sync> {
    name: &'static str,
    grid: GridDim,
    gen: F,
}

impl<F: Fn(usize, usize) -> Vec<Op> + Send + Sync> Kernel for FnKernel<F> {
    fn name(&self) -> &str {
        self.name
    }
    fn grid(&self) -> GridDim {
        self.grid
    }
    fn warp_program(&self, cta: usize, warp: usize) -> Box<dyn WarpProgram> {
        Box::new(TraceProgram::new((self.gen)(cta, warp)))
    }
}

fn run(policy: L1PolicyKind, kernel: &dyn Kernel) -> SimStats {
    let cfg = GpuConfig::fermi_with_policy(policy).unwrap();
    Gpu::new(cfg)
        .run_kernel(kernel)
        .expect("simulation completes")
}

/// Pure streaming: every warp reads its own fresh lines once.
fn streaming_kernel(ctas: usize, loads: usize) -> impl Kernel {
    FnKernel {
        name: "stream",
        grid: GridDim {
            ctas,
            threads_per_cta: 128,
        },
        gen: move |cta, warp| {
            let wid = (cta * 4 + warp) as u64;
            (0..loads)
                .map(|i| Op::strided_load(Addr::new((wid * loads as u64 + i as u64) * 128), 4, 32))
                .collect()
        },
    }
}

/// Every warp hammers the same small hot working set.
fn hot_kernel(ctas: usize, iters: usize) -> impl Kernel {
    FnKernel {
        name: "hot",
        grid: GridDim {
            ctas,
            threads_per_cta: 128,
        },
        gen: move |_, _| {
            (0..iters)
                .map(|i| Op::strided_load(Addr::new(((i % 4) * 128) as u64), 4, 32))
                .collect()
        },
    }
}

#[test]
fn empty_grid_finishes_immediately() {
    let k = FnKernel {
        name: "empty",
        grid: GridDim {
            ctas: 0,
            threads_per_cta: 64,
        },
        gen: |_, _| vec![],
    };
    let stats = run(L1PolicyKind::Lru, &k);
    assert_eq!(stats.instructions, 0);
    assert_eq!(stats.core.ctas_completed, 0);
}

#[test]
fn all_ctas_complete_and_counts_add_up() {
    let stats = run(L1PolicyKind::Lru, &streaming_kernel(40, 8));
    assert_eq!(stats.core.ctas_completed, 40);
    // 40 CTAs x 4 warps x 8 loads = 1280 warp instructions.
    assert_eq!(stats.instructions, 1280);
    assert_eq!(stats.core.mem_instructions, 1280);
    // Each strided load = 1 transaction (perfectly coalesced).
    assert_eq!(stats.core.transactions, 1280);
    assert_eq!(stats.l1.accesses(), 1280);
    assert!(stats.cycles > 0);
}

#[test]
fn streaming_misses_everywhere() {
    let stats = run(L1PolicyKind::Lru, &streaming_kernel(20, 16));
    assert!(
        stats.l1_miss_rate() > 0.99,
        "streaming L1 miss rate {}",
        stats.l1_miss_rate()
    );
    assert!(
        stats.l2.miss_rate() > 0.99,
        "streaming L2 miss rate {}",
        stats.l2.miss_rate()
    );
    assert_eq!(stats.dram.reads, stats.l2.misses());
    // Figure 2's signature: all residencies end with zero reuse.
    assert!((stats.l1.reuse.fraction_zero() - 1.0).abs() < 1e-9);
}

#[test]
fn hot_set_hits_in_l1() {
    let stats = run(L1PolicyKind::Lru, &hot_kernel(16, 64));
    assert!(
        stats.l1_miss_rate() < 0.1,
        "hot working set should hit, miss rate {}",
        stats.l1_miss_rate()
    );
    // Only 4 distinct lines: DRAM traffic is tiny.
    assert!(stats.dram.reads <= 64, "dram reads {}", stats.dram.reads);
}

#[test]
fn determinism_same_cycles_same_stats() {
    let a = run(L1PolicyKind::Lru, &streaming_kernel(12, 12));
    let b = run(L1PolicyKind::Lru, &streaming_kernel(12, 12));
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.instructions, b.instructions);
    assert_eq!(a.l1.misses(), b.l1.misses());
    assert_eq!(a.dram.reads, b.dram.reads);
}

#[test]
fn barrier_synchronises_whole_cta() {
    // Warp 0 computes 500 cycles *before* the barrier; warps 1..3 compute
    // 500 cycles *after* it. With the barrier the phases serialise
    // (~1000 cycles); without it all computes overlap (~500 cycles).
    fn gen(with_barrier: bool) -> impl Fn(usize, usize) -> Vec<Op> {
        move |_, warp| {
            let mut ops = Vec::new();
            if warp == 0 {
                ops.push(Op::Compute { cycles: 500 });
            }
            if with_barrier {
                ops.push(Op::Barrier);
            }
            if warp != 0 {
                ops.push(Op::Compute { cycles: 500 });
            }
            ops
        }
    }
    let grid = GridDim {
        ctas: 1,
        threads_per_cta: 128,
    };
    let with = run(
        L1PolicyKind::Lru,
        &FnKernel {
            name: "barrier",
            grid,
            gen: gen(true),
        },
    );
    let without = run(
        L1PolicyKind::Lru,
        &FnKernel {
            name: "nobarrier",
            grid,
            gen: gen(false),
        },
    );
    assert!(
        with.cycles > without.cycles + 400,
        "barrier must serialise the phases: with={} without={}",
        with.cycles,
        without.cycles
    );
    assert!(with.cycles >= 1000);
    assert!(without.cycles < 600);
}

#[test]
fn atomics_complete_and_serialise() {
    let k = FnKernel {
        name: "atomics",
        grid: GridDim {
            ctas: 8,
            threads_per_cta: 64,
        },
        gen: |_, _| {
            // Every warp atomically updates the same line: heavy AOU
            // serialisation at one partition.
            vec![Op::Atomic {
                addrs: (0..32).map(|_| Some(Addr::new(0))).collect(),
            }]
        },
    };
    let stats = run(L1PolicyKind::Lru, &k);
    assert_eq!(stats.core.ctas_completed, 8);
    assert_eq!(
        stats.partition.atomics, 16,
        "8 CTAs x 2 warps, 1 coalesced atomic each"
    );
}

#[test]
fn stores_write_through_to_l2_and_dram() {
    let k = FnKernel {
        name: "stores",
        grid: GridDim {
            ctas: 4,
            threads_per_cta: 64,
        },
        gen: |cta, warp| {
            let wid = (cta * 2 + warp) as u64;
            (0..8)
                .map(|i| Op::strided_store(Addr::new((wid * 8 + i) * 4096), 4, 32))
                .collect()
        },
    };
    let stats = run(L1PolicyKind::Lru, &k);
    // L1 is no-write-allocate: nothing cached, all accesses recorded.
    assert_eq!(stats.l1.accesses(), 64);
    assert_eq!(stats.l1.fills, 0);
    // L2 write-allocates: every store miss fetches then dirties...
    assert!(stats.l2.writes == 64);
    // ...and the kernel-end flush writes the dirty lines back.
    assert!(stats.l2.writebacks > 0);
}

#[test]
fn gto_and_lrr_both_complete() {
    let mut cfg = GpuConfig::fermi().unwrap();
    cfg.warp_sched = WarpSchedKind::Gto;
    let gto = Gpu::new(cfg).run_kernel(&streaming_kernel(16, 8)).unwrap();
    let lrr = run(L1PolicyKind::Lru, &streaming_kernel(16, 8));
    assert_eq!(gto.instructions, lrr.instructions);
    assert_eq!(gto.core.ctas_completed, 16);
}

#[test]
fn divergent_loads_generate_many_transactions() {
    let k = FnKernel {
        name: "divergent",
        grid: GridDim {
            ctas: 2,
            threads_per_cta: 32,
        },
        gen: |cta, _| {
            // Each lane touches its own line: 32 transactions per load.
            vec![Op::gather(
                (0..32)
                    .map(|l| Some(Addr::new((cta * 32 + l) as u64 * 128 * 64)))
                    .collect(),
            )]
        },
    };
    let stats = run(L1PolicyKind::Lru, &k);
    assert_eq!(stats.core.mem_instructions, 2);
    assert_eq!(stats.core.transactions, 64);
    assert_eq!(stats.l1.accesses(), 64);
}

#[test]
fn every_design_point_runs_the_same_kernel() {
    let designs = [
        L1PolicyKind::Lru,
        L1PolicyKind::Srrip { bits: 3 },
        L1PolicyKind::GCache(GCacheConfig::default()),
        L1PolicyKind::StaticPdp { pd: 8 },
        L1PolicyKind::DynamicPdp(DynamicPdpConfig::pdp3()),
        L1PolicyKind::DynamicPdp(DynamicPdpConfig::pdp8()),
    ];
    for d in designs {
        let stats = run(d, &streaming_kernel(8, 8));
        assert_eq!(stats.core.ctas_completed, 8, "design {d:?}");
        assert_eq!(stats.instructions, 256, "design {d:?}");
        assert_eq!(stats.design, d.design_name());
    }
}

fn run_clustered(policy: L1PolicyKind, cluster_size: usize, kernel: &dyn Kernel) -> SimStats {
    let cfg = GpuConfig::fermi_with_policy(policy)
        .unwrap()
        .with_hierarchy(Hierarchy::SharedL15 {
            cluster_size,
            kb: 64,
        })
        .unwrap();
    Gpu::new(cfg)
        .run_kernel(kernel)
        .expect("clustered simulation completes")
}

#[test]
fn flat_runs_report_no_l15_traffic() {
    let stats = run(L1PolicyKind::Lru, &streaming_kernel(8, 8));
    assert_eq!(stats.l15.accesses(), 0);
    assert_eq!(stats.l15_miss_rate(), 0.0);
}

#[test]
fn clustered_hierarchy_completes_same_work_as_flat() {
    for cluster_size in [4, 8] {
        let flat = run(L1PolicyKind::Lru, &streaming_kernel(24, 8));
        let clustered = run_clustered(L1PolicyKind::Lru, cluster_size, &streaming_kernel(24, 8));
        assert_eq!(clustered.core.ctas_completed, 24, "c{cluster_size}");
        assert_eq!(clustered.instructions, flat.instructions, "c{cluster_size}");
        assert_eq!(
            clustered.l1.accesses(),
            flat.l1.accesses(),
            "c{cluster_size}"
        );
        // Every L1 miss, store and atomic passes through the L1.5.
        assert!(clustered.l15.accesses() > 0, "c{cluster_size}");
        // Streaming lines are fresh everywhere: L1.5 misses dominate, and
        // every L1.5 miss reaches the L2 exactly as in the flat machine.
        assert_eq!(
            clustered.l2.accesses(),
            flat.l2.accesses(),
            "c{cluster_size}"
        );
        assert_eq!(clustered.dram.reads, flat.dram.reads, "c{cluster_size}");
    }
}

#[test]
fn shared_l15_absorbs_l1_thrash() {
    // Each warp cyclically scans 6 lines of one L1 set: 6 tags over the
    // 4-way L1 is LRU's cyclic-eviction pathology, so the L1 misses every
    // round — but the set fits in the 8-way L1.5, so from the second
    // round on those misses hit the shared cluster cache instead of
    // travelling to the L2.
    let thrash = FnKernel {
        name: "l1thrash",
        grid: GridDim {
            ctas: 16,
            threads_per_cta: 32,
        },
        gen: |_, _| {
            (0..4u64)
                .flat_map(|_| (0..6u64).map(|j| Op::strided_load(Addr::new(j * 64 * 128), 4, 32)))
                .collect()
        },
    };
    let flat = run(L1PolicyKind::Lru, &thrash);
    let clustered = run_clustered(L1PolicyKind::Lru, 4, &thrash);
    assert_eq!(clustered.instructions, flat.instructions);
    assert!(clustered.l15.accesses() > 0);
    assert!(
        clustered.l15.hits() > 0,
        "repeat L1 misses should hit the shared L1.5: {:?}",
        clustered.l15
    );
    assert!(
        clustered.l2.accesses() < flat.l2.accesses(),
        "the L1.5 should absorb L2 traffic: clustered {} vs flat {}",
        clustered.l2.accesses(),
        flat.l2.accesses()
    );
}

#[test]
fn clustered_runs_are_deterministic() {
    let a = run_clustered(
        L1PolicyKind::GCache(GCacheConfig::default()),
        4,
        &hot_kernel(12, 32),
    );
    let b = run_clustered(
        L1PolicyKind::GCache(GCacheConfig::default()),
        4,
        &hot_kernel(12, 32),
    );
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.l15.hits(), b.l15.hits());
    assert_eq!(a.l2.accesses(), b.l2.accesses());
    assert_eq!(a.dram.reads, b.dram.reads);
}

/// The headline behavioural test: an inter-warp thrashing kernel where
/// G-Cache must beat the LRU baseline by protecting hot lines.
#[test]
fn gcache_beats_lru_on_thrashing_kernel() {
    // Each warp loops over a per-warp working set sized so that the warps
    // sharing a core overflow the L1 together (thrash under LRU), mixed
    // with streaming lines that pollute the cache.
    // Coordinated inter-warp thrash: per core, exactly 6 hot lines land in
    // every 4-way L1 set (LRU's cyclic-eviction pathology), plus one
    // streaming line per warp-round as pollution. CTA c deterministically
    // lands on core c % 16 (round-robin), which lets the generator spread
    // work per core.
    let thrash = FnKernel {
        name: "thrash",
        grid: GridDim {
            ctas: 128,
            threads_per_cta: 128,
        },
        gen: |cta, warp| {
            let core = (cta % 16) as u64;
            let w = ((cta / 16) * 4 + warp) as u64; // core-local warp index
            let mut ops = Vec::new();
            for round in 0..8u64 {
                for j in 0..12u64 {
                    let u = w * 12 + j; // 0..384 per core
                    let (set, g) = (u % 64, u / 64);
                    let line = (core * 6 + g) * 64 + set;
                    ops.push(Op::strided_load(Addr::new(line * 128), 4, 32));
                }
                let su = w * 8 + round;
                let sline = (1 << 22) + (core * 256 + su) * 64 + (w * 12) % 64;
                ops.push(Op::strided_load(Addr::new(sline * 128), 4, 32));
            }
            ops
        },
    };
    let bs = run(L1PolicyKind::Lru, &thrash);
    let bss = run(L1PolicyKind::Srrip { bits: 3 }, &thrash);
    let gc = run(L1PolicyKind::GCache(GCacheConfig::default()), &thrash);
    assert!(
        gc.l1_miss_rate() + 0.03 < bs.l1_miss_rate(),
        "GC miss rate {:.3} must clearly beat LRU {:.3}",
        gc.l1_miss_rate(),
        bs.l1_miss_rate()
    );
    assert!(
        gc.l1.bypassed_fills > 0,
        "GC should have bypassed some fills"
    );
    let speedup = gc.speedup_over(&bs);
    assert!(speedup > 1.02, "GC speedup over BS was {speedup:.3}");
    // The paper's §5.1 finding: replacement policy alone (BS-S) barely
    // moves — the benefit comes from bypassing.
    assert!(
        gc.speedup_over(&bss) > 1.02,
        "GC must also beat SRRIP-only: {:.3}",
        gc.speedup_over(&bss)
    );
}
