//! Focused tests of the SIMT core: launch capacity, issue behaviour,
//! LD/ST pumping and warp wake-up — driven directly, without the full GPU.

use gcache_core::addr::{Addr, CoreId};
use gcache_core::policy::lru::Lru;
use gcache_core::policy::AccessKind;
use gcache_sim::config::GpuConfig;
use gcache_sim::core::SimtCore;
use gcache_sim::isa::{GridDim, Kernel, Op, TraceProgram, WarpProgram};
use gcache_sim::request::MemResponse;

struct K {
    grid: GridDim,
    ops: Vec<Op>,
}

impl Kernel for K {
    fn name(&self) -> &str {
        "unit"
    }
    fn grid(&self) -> GridDim {
        self.grid
    }
    fn warp_program(&self, _cta: usize, _warp: usize) -> Box<dyn WarpProgram> {
        Box::new(TraceProgram::new(self.ops.clone()))
    }
}

fn core() -> SimtCore {
    let cfg = GpuConfig::fermi().unwrap();
    SimtCore::new(CoreId(0), &cfg, Lru::new(&cfg.l1_geometry))
}

#[test]
fn launch_capacity_limits() {
    let mut c = core();
    // 8 CTA slots, 48 warp slots, 1536 threads. 256-thread CTAs: 6 fit
    // (thread limit), not 8.
    let k = K {
        grid: GridDim {
            ctas: 100,
            threads_per_cta: 256,
        },
        ops: vec![],
    };
    let mut launched = 0;
    while c.can_launch(&k) {
        c.launch_cta(&k, launched);
        launched += 1;
    }
    assert_eq!(launched, 6, "1536 threads / 256 per CTA");
    assert_eq!(c.resident_ctas(), 6);
}

#[test]
fn cta_slot_count_limits() {
    let mut c = core();
    // Tiny CTAs: the 8 CTA slots bind first.
    let k = K {
        grid: GridDim {
            ctas: 100,
            threads_per_cta: 32,
        },
        ops: vec![],
    };
    let mut launched = 0;
    while c.can_launch(&k) {
        c.launch_cta(&k, launched);
        launched += 1;
    }
    assert_eq!(launched, 8, "max CTAs per core");
}

#[test]
fn warp_slot_count_limits() {
    let mut c = core();
    // 12 warps per CTA (384 threads): 48 warp slots bind at 4 CTAs.
    let k = K {
        grid: GridDim {
            ctas: 100,
            threads_per_cta: 384,
        },
        ops: vec![],
    };
    let mut launched = 0;
    while c.can_launch(&k) {
        c.launch_cta(&k, launched);
        launched += 1;
    }
    assert_eq!(launched, 4, "48 warp slots / 12 warps per CTA");
}

#[test]
fn empty_programs_retire_immediately() {
    let mut c = core();
    let k = K {
        grid: GridDim {
            ctas: 1,
            threads_per_cta: 64,
        },
        ops: vec![],
    };
    c.launch_cta(&k, 0);
    assert!(!c.is_idle());
    for now in 1..10 {
        assert!(c.tick(now, true).is_none());
    }
    assert!(c.is_idle(), "empty warps must retire");
    assert_eq!(c.stats().ctas_completed, 1);
    assert_eq!(c.stats().instructions, 0);
}

#[test]
fn compute_occupies_one_issue_slot_per_warp() {
    let mut c = core();
    let k = K {
        grid: GridDim {
            ctas: 1,
            threads_per_cta: 64,
        },
        ops: vec![Op::Compute { cycles: 10 }, Op::Compute { cycles: 10 }],
    };
    c.launch_cta(&k, 0);
    for now in 1..100 {
        c.tick(now, true);
        if c.is_idle() {
            break;
        }
    }
    assert!(c.is_idle());
    assert_eq!(c.stats().instructions, 4, "2 warps x 2 compute ops");
}

#[test]
fn load_blocks_until_response() {
    let mut c = core();
    let k = K {
        grid: GridDim {
            ctas: 1,
            threads_per_cta: 32,
        },
        ops: vec![
            Op::strided_load(Addr::new(0), 4, 32),
            Op::Compute { cycles: 1 },
        ],
    };
    c.launch_cta(&k, 0);
    // Tick until the request pops out.
    let mut req = None;
    for now in 1..20 {
        if let Some(r) = c.tick(now, true) {
            req = Some(r);
            break;
        }
    }
    let req = req.expect("miss must emit a request");
    assert_eq!(req.kind, AccessKind::Read);
    // The warp is blocked: many more ticks, no second instruction.
    for now in 20..200 {
        assert!(c.tick(now, true).is_none());
    }
    assert_eq!(c.stats().instructions, 1);
    assert!(!c.is_idle());
    // Response arrives: warp wakes, compute issues, CTA retires.
    c.on_response(MemResponse {
        line: req.line,
        kind: AccessKind::Read,
        core: CoreId(0),
        warp: req.warp,
        victim_hint: false,
        class: None,
    });
    for now in 200..300 {
        c.tick(now, true);
        if c.is_idle() {
            break;
        }
    }
    assert!(c.is_idle());
    assert_eq!(c.stats().instructions, 2);
}

#[test]
fn stores_do_not_block() {
    let mut c = core();
    let k = K {
        grid: GridDim {
            ctas: 1,
            threads_per_cta: 32,
        },
        ops: vec![
            Op::strided_store(Addr::new(0), 4, 32),
            Op::Compute { cycles: 1 },
        ],
    };
    c.launch_cta(&k, 0);
    for now in 1..100 {
        c.tick(now, true);
        if c.is_idle() {
            break;
        }
    }
    assert!(c.is_idle(), "store is fire-and-forget");
    assert_eq!(c.stats().instructions, 2);
}

#[test]
fn network_backpressure_stalls_ldst() {
    let mut c = core();
    let k = K {
        grid: GridDim {
            ctas: 1,
            threads_per_cta: 32,
        },
        ops: vec![Op::strided_load(Addr::new(0), 4, 32)],
    };
    c.launch_cta(&k, 0);
    // can_inject = false: the transaction must never reach the L1.
    for now in 1..50 {
        assert!(c.tick(now, false).is_none());
    }
    assert!(c.stats().mem_stall_cycles > 0);
    assert_eq!(
        c.l1().stats().accesses(),
        0,
        "access must not commit while stalled"
    );
    // Release the backpressure.
    let mut got = false;
    for now in 50..100 {
        if c.tick(now, true).is_some() {
            got = true;
            break;
        }
    }
    assert!(got, "request must flow after backpressure lifts");
}

#[test]
fn l1_hit_completes_without_network() {
    let mut c = core();
    let k = K {
        grid: GridDim {
            ctas: 1,
            threads_per_cta: 32,
        },
        ops: vec![
            Op::strided_load(Addr::new(0), 4, 32),
            Op::strided_load(Addr::new(0), 4, 32), // same line: hit
        ],
    };
    c.launch_cta(&k, 0);
    let mut req = None;
    for now in 1..20 {
        if let Some(r) = c.tick(now, true) {
            req = Some(r);
            break;
        }
    }
    let req = req.unwrap();
    c.on_response(MemResponse {
        line: req.line,
        kind: AccessKind::Read,
        core: CoreId(0),
        warp: req.warp,
        victim_hint: false,
        class: None,
    });
    // Second load hits; no further request may appear.
    for now in 20..100 {
        assert!(c.tick(now, true).is_none());
        if c.is_idle() {
            break;
        }
    }
    assert!(c.is_idle());
    assert_eq!(c.l1().stats().hits(), 1);
}
