//! The paper's qualitative claims, asserted end-to-end at test scale:
//! who wins, where, and who must not be hurt.

use gcache::prelude::*;

fn run(name: &str, policy: L1PolicyKind) -> SimStats {
    let bench = by_name(name, Scale::Test).expect("Table 1 benchmark");
    Gpu::new(GpuConfig::fermi_with_policy(policy).unwrap())
        .run_kernel(bench.as_ref())
        .expect("simulation completes")
}

fn gc() -> L1PolicyKind {
    L1PolicyKind::GCache(GCacheConfig::default())
}

#[test]
fn gcache_speeds_up_cache_sensitive_benchmarks() {
    // §5.1: "For cache sensitive benchmarks, GC gets reasonable speedup
    // over BS". Paper scale: the shrunk test workloads are cold-miss
    // dominated and show no contention to manage.
    let mut ratios = Vec::new();
    for name in ["BFS", "SYRK", "PVC", "IIX"] {
        let bench = by_name(name, Scale::Paper).unwrap();
        let bs = Gpu::new(GpuConfig::fermi_with_policy(L1PolicyKind::Lru).unwrap())
            .run_kernel(bench.as_ref())
            .unwrap();
        let g = Gpu::new(GpuConfig::fermi_with_policy(gc()).unwrap())
            .run_kernel(bench.as_ref())
            .unwrap();
        ratios.push(g.speedup_over(&bs));
    }
    let gm = geomean(ratios.iter().copied());
    assert!(
        gm > 1.04,
        "GC sensitive-set geomean {gm:.3} must clearly exceed 1"
    );
}

#[test]
fn gcache_does_not_hamper_insensitive_benchmarks() {
    // Table 1's lower block: "not hampered by the proposed design".
    for name in ["SD1", "BP", "STL", "WP", "FWT"] {
        let bs = run(name, L1PolicyKind::Lru);
        let g = run(name, gc());
        let s = g.speedup_over(&bs);
        assert!(s > 0.95, "{name}: GC slowdown {s:.3} beyond tolerance");
    }
}

#[test]
fn fwt_never_bypasses() {
    // Table 3's control row: a pure stream with no re-reference never
    // triggers contention detection, so GC's bypass ratio is exactly 0.
    let g = run("FWT", gc());
    assert_eq!(g.l1.bypassed_fills, 0, "FWT must not bypass");
}

#[test]
fn contended_benchmarks_do_bypass() {
    // Sensitive benchmarks must actually exercise the mechanism. Paper
    // scale: the shrunk test workloads are dominated by cold misses and
    // barely heat up the hot regions.
    for name in ["SPMV", "SYRK", "BFS"] {
        let bench = by_name(name, Scale::Paper).unwrap();
        let g = Gpu::new(GpuConfig::fermi_with_policy(gc()).unwrap())
            .run_kernel(bench.as_ref())
            .unwrap();
        assert!(
            g.l1_bypass_ratio() > 0.01,
            "{name}: GC bypass ratio {:.3} suspiciously low",
            g.l1_bypass_ratio()
        );
    }
}

#[test]
fn replacement_alone_is_not_enough() {
    // §5.1: "without bypass, 3-bit SRRIP policy almost has no impact" —
    // the benefit comes from bypassing, so GC > BS-S on a benchmark square
    // in its comfort zone.
    let bss = run("SYRK", L1PolicyKind::Srrip { bits: 3 });
    let g = run("SYRK", gc());
    assert!(
        g.ipc() > bss.ipc(),
        "GC ({:.3}) must beat SRRIP-only ({:.3}) on SYRK",
        g.ipc(),
        bss.ipc()
    );
}

#[test]
fn streaming_benchmark_misses_everywhere_under_every_design() {
    // FWT is the canonical stream: miss rate stays ~100 % no matter the
    // policy (Figure 9's right edge).
    for policy in [L1PolicyKind::Lru, gc(), L1PolicyKind::StaticPdp { pd: 4 }] {
        let s = run("FWT", policy);
        assert!(
            s.l1_miss_rate() > 0.95,
            "FWT miss rate {:.3} under {}",
            s.l1_miss_rate(),
            s.design
        );
    }
}

#[test]
fn bigger_l1_helps_sensitive_benchmarks() {
    // Figures 3/4 in miniature: 128 KB beats 32 KB on a sensitive
    // benchmark. Paper scale: the shrunk runs are cold-miss dominated and
    // size-insensitive.
    let bench = by_name("SYRK", Scale::Paper).unwrap();
    let small = Gpu::new(GpuConfig::fermi().unwrap())
        .run_kernel(bench.as_ref())
        .unwrap();
    let big = Gpu::new(GpuConfig::fermi().unwrap().with_l1_kb(128).unwrap())
        .run_kernel(bench.as_ref())
        .unwrap();
    assert!(
        big.ipc() > small.ipc() * 1.02,
        "128KB ({:.3}) must beat 32KB ({:.3}) on SYRK",
        big.ipc(),
        small.ipc()
    );
    assert!(big.l1_miss_rate() < small.l1_miss_rate());
}

#[test]
fn victim_bit_sharing_still_works() {
    // §4.1/§4.3: sharing victim bits between cores trades accuracy for
    // area but the mechanism must keep functioning.
    let bench = by_name("SPMV", Scale::Test).unwrap();
    let mut cfg = GpuConfig::fermi_with_policy(gc()).unwrap();
    cfg.victim_bit_share = 16; // all cores share one bit
    let shared = Gpu::new(cfg).run_kernel(bench.as_ref()).unwrap();
    assert!(
        shared.l1.bypassed_fills > 0,
        "shared victim bits must still trigger bypasses"
    );
    let bs = run("SPMV", L1PolicyKind::Lru);
    assert!(
        shared.speedup_over(&bs) > 0.9,
        "S_v=16 should not collapse performance: {:.3}",
        shared.speedup_over(&bs)
    );
}
