//! Cross-crate determinism: every (workload, design) pair must produce
//! bit-identical statistics across repeated runs — the property that makes
//! the paper's experiments reproducible.

use gcache::prelude::*;
use gcache_core::policy::pdp_dyn::DynamicPdpConfig;

fn run_once(name: &str, policy: L1PolicyKind) -> SimStats {
    let bench = by_name(name, Scale::Test).expect("Table 1 benchmark");
    Gpu::new(GpuConfig::fermi_with_policy(policy).unwrap())
        .run_kernel(bench.as_ref())
        .expect("simulation completes")
}

fn assert_identical(a: &SimStats, b: &SimStats) {
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.instructions, b.instructions);
    assert_eq!(a.l1.accesses(), b.l1.accesses());
    assert_eq!(a.l1.hits(), b.l1.hits());
    assert_eq!(a.l1.bypassed_fills, b.l1.bypassed_fills);
    assert_eq!(a.l2.accesses(), b.l2.accesses());
    assert_eq!(a.l2.writebacks, b.l2.writebacks);
    assert_eq!(a.dram.reads, b.dram.reads);
    assert_eq!(a.dram.writes, b.dram.writes);
    assert_eq!(a.dram.row_hits, b.dram.row_hits);
    assert_eq!(a.noc_req.packets, b.noc_req.packets);
    assert_eq!(a.noc_resp.packets, b.noc_resp.packets);
}

#[test]
fn spmv_is_deterministic_under_every_design() {
    for policy in [
        L1PolicyKind::Lru,
        L1PolicyKind::Srrip { bits: 3 },
        L1PolicyKind::GCache(GCacheConfig::default()),
        L1PolicyKind::StaticPdp { pd: 6 },
        L1PolicyKind::DynamicPdp(DynamicPdpConfig::pdp3()),
    ] {
        let a = run_once("SPMV", policy);
        let b = run_once("SPMV", policy);
        assert_identical(&a, &b);
    }
}

#[test]
fn every_benchmark_is_deterministic_under_gcache() {
    for bench in registry(Scale::Test) {
        let name = bench.info().name;
        let a = run_once(name, L1PolicyKind::GCache(GCacheConfig::default()));
        let b = run_once(name, L1PolicyKind::GCache(GCacheConfig::default()));
        assert_identical(&a, &b);
    }
}
