//! Property-based tests pitting the production cache substrate against
//! simple reference models over randomised access streams.

use gcache::prelude::*;
use gcache_core::geometry::CacheGeometry;
use proptest::prelude::*;
use std::collections::VecDeque;

/// A straightforward reference LRU cache: per-set deque of line addresses,
/// most recent first.
struct RefLru {
    geom: CacheGeometry,
    sets: Vec<VecDeque<u64>>,
}

impl RefLru {
    fn new(geom: CacheGeometry) -> Self {
        RefLru { geom, sets: vec![VecDeque::new(); geom.sets() as usize] }
    }

    /// Returns hit/miss and performs the LRU update + fill.
    fn access(&mut self, line: LineAddr) -> bool {
        let set = self.geom.set_of(line);
        let q = &mut self.sets[set];
        if let Some(pos) = q.iter().position(|&l| l == line.raw()) {
            q.remove(pos);
            q.push_front(line.raw());
            true
        } else {
            q.push_front(line.raw());
            q.truncate(self.geom.ways() as usize);
            false
        }
    }
}

fn small_geom() -> CacheGeometry {
    CacheGeometry::new(2048, 4, 128).unwrap() // 4 sets, 4 ways
}

proptest! {
    /// The production Cache under LRU, driven access+fill-on-miss, must
    /// agree hit-for-hit with the reference model.
    #[test]
    fn lru_cache_matches_reference(lines in proptest::collection::vec(0u64..64, 1..400)) {
        let geom = small_geom();
        let mut dut = Cache::new(CacheConfig::l1(geom, 0), Box::new(Lru::new(&geom)));
        let mut reference = RefLru::new(geom);
        for (i, &raw) in lines.iter().enumerate() {
            let line = LineAddr::new(raw);
            let dut_hit = dut.access(line, AccessKind::Read, CoreId(0)).is_hit();
            if !dut_hit {
                dut.fill(FillCtx::plain(line, CoreId(0)), false);
            }
            let ref_hit = reference.access(line);
            prop_assert_eq!(dut_hit, ref_hit, "divergence at access {} (line {:#x})", i, raw);
        }
        // Stats agree with the replay.
        prop_assert_eq!(dut.stats().accesses(), lines.len() as u64);
    }

    /// Under any policy, a cache never reports more hits than accesses and
    /// never holds more lines than its capacity; flush returns the cache to
    /// empty.
    #[test]
    fn cache_global_invariants(
        lines in proptest::collection::vec(0u64..128, 1..300),
        policy_idx in 0usize..4,
        hints in proptest::collection::vec(any::<bool>(), 1..300),
    ) {
        let geom = small_geom();
        let policy: Box<dyn ReplacementPolicy> = match policy_idx {
            0 => Box::new(Lru::new(&geom)),
            1 => Box::new(Rrip::srrip(&geom, 3)),
            2 => Box::new(GCache::with_defaults(&geom)),
            _ => Box::new(StaticPdp::new(&geom, 5)),
        };
        let mut dut = Cache::new(CacheConfig::l1(geom, 64), policy);
        for (i, &raw) in lines.iter().enumerate() {
            let line = LineAddr::new(raw);
            if !dut.access(line, AccessKind::Read, CoreId(0)).is_hit() {
                let hint = hints[i % hints.len()];
                dut.fill(FillCtx { line, core: CoreId(0), victim_hint: hint }, false);
            }
            prop_assert!(dut.occupancy() <= geom.lines() as usize);
        }
        let s = dut.stats();
        prop_assert!(s.hits() <= s.accesses());
        prop_assert!(s.fills + s.bypassed_fills <= s.accesses());
        dut.flush();
        prop_assert_eq!(dut.occupancy(), 0);
        // After a flush every residency is accounted in the reuse histogram.
        prop_assert_eq!(dut.stats().reuse.total(), dut.stats().fills);
    }

    /// A bypassing policy must never bypass when the set has free space.
    #[test]
    fn no_bypass_with_free_ways(lines in proptest::collection::vec(0u64..16, 1..64)) {
        let geom = CacheGeometry::new(1024, 4, 128).unwrap(); // 2 sets
        let mut dut = Cache::new(CacheConfig::l1(geom, 0), Box::new(StaticPdp::new(&geom, 16)));
        for &raw in &lines {
            let line = LineAddr::new(raw);
            let set = geom.set_of(line);
            let free_before = (0..geom.ways() as usize).count() > dut_occupancy_of_set(&dut, set, geom);
            if !dut.access(line, AccessKind::Read, CoreId(0)).is_hit() {
                let out = dut.fill(FillCtx::plain(line, CoreId(0)), false);
                if free_before && dut_occupancy_of_set(&dut, set, geom) < geom.ways() as usize && out.bypassed {
                    prop_assert!(false, "bypassed with a free way available");
                }
            }
        }
    }

    /// MSHR files conserve targets: everything allocated is returned by
    /// completions, in order, exactly once.
    #[test]
    fn mshr_conserves_targets(ops in proptest::collection::vec((0u64..8, any::<bool>()), 1..200)) {
        let mut mshr: MshrFile<usize> = MshrFile::new(4, 4);
        let mut outstanding: std::collections::HashMap<u64, Vec<usize>> = Default::default();
        let mut returned = 0usize;
        let mut accepted = 0usize;
        for (i, &(line, complete)) in ops.iter().enumerate() {
            if complete {
                let got = mshr.complete(LineAddr::new(line));
                let expect = outstanding.remove(&line);
                prop_assert_eq!(got.clone(), expect);
                returned += got.map_or(0, |v| v.len());
            } else if mshr.allocate(LineAddr::new(line), i).is_ok() {
                outstanding.entry(line).or_default().push(i);
                accepted += 1;
            }
        }
        // Drain the rest.
        let lines: Vec<_> = mshr.lines().collect();
        for line in lines {
            let got = mshr.complete(line).unwrap();
            let expect = outstanding.remove(&line.raw()).unwrap();
            prop_assert_eq!(&got, &expect);
            returned += got.len();
        }
        prop_assert_eq!(returned, accepted);
        prop_assert!(mshr.is_empty());
        prop_assert!(outstanding.is_empty());
    }
}

fn dut_occupancy_of_set(dut: &Cache, set: usize, geom: CacheGeometry) -> usize {
    // Count occupancy of one set by probing all possible lines of that set
    // in the small test universe.
    (0u64..16)
        .filter(|&raw| geom.set_of(LineAddr::new(raw)) == set && dut.contains(LineAddr::new(raw)))
        .count()
}
