//! Randomised-property tests pitting the production cache substrate
//! against simple reference models over seeded random access streams
//! (dependency-free [`gcache_core::rng::SmallRng`], exact reproduction).

use gcache::prelude::*;
use gcache_core::geometry::CacheGeometry;
use gcache_core::rng::SmallRng;
use std::collections::VecDeque;

const CASES: u64 = 64;

/// A straightforward reference LRU cache: per-set deque of line addresses,
/// most recent first.
struct RefLru {
    geom: CacheGeometry,
    sets: Vec<VecDeque<u64>>,
}

impl RefLru {
    fn new(geom: CacheGeometry) -> Self {
        RefLru {
            geom,
            sets: vec![VecDeque::new(); geom.sets() as usize],
        }
    }

    /// Returns hit/miss and performs the LRU update + fill.
    fn access(&mut self, line: LineAddr) -> bool {
        let set = self.geom.set_of(line);
        let q = &mut self.sets[set];
        if let Some(pos) = q.iter().position(|&l| l == line.raw()) {
            q.remove(pos);
            q.push_front(line.raw());
            true
        } else {
            q.push_front(line.raw());
            q.truncate(self.geom.ways() as usize);
            false
        }
    }
}

fn small_geom() -> CacheGeometry {
    CacheGeometry::new(2048, 4, 128).unwrap() // 4 sets, 4 ways
}

/// The production Cache under LRU, driven access+fill-on-miss, must agree
/// hit-for-hit with the reference model.
#[test]
fn lru_cache_matches_reference() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x5eed_2001 ^ case);
        let n = rng.gen_range(1..400) as usize;
        let lines: Vec<u64> = (0..n).map(|_| rng.gen_range(0..64)).collect();
        let geom = small_geom();
        let mut dut = Cache::new(CacheConfig::l1(geom, 0), Lru::new(&geom));
        let mut reference = RefLru::new(geom);
        for (i, &raw) in lines.iter().enumerate() {
            let line = LineAddr::new(raw);
            let dut_hit = dut.access(line, AccessKind::Read, CoreId(0)).is_hit();
            if !dut_hit {
                dut.fill(AccessCtx::plain(line, CoreId(0)), false);
            }
            let ref_hit = reference.access(line);
            assert_eq!(
                dut_hit, ref_hit,
                "case {case}: divergence at access {i} (line {raw:#x})"
            );
        }
        // Stats agree with the replay.
        assert_eq!(dut.stats().accesses(), lines.len() as u64, "case {case}");
    }
}

/// Under any policy, a cache never reports more hits than accesses and
/// never holds more lines than its capacity; flush returns the cache to
/// empty.
#[test]
fn cache_global_invariants() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x5eed_2002 ^ case);
        let geom = small_geom();
        let policy: PolicyKind = match rng.gen_range(0..4) {
            0 => Lru::new(&geom).into(),
            1 => Rrip::srrip(&geom, 3).into(),
            2 => GCache::with_defaults(&geom).into(),
            _ => StaticPdp::new(&geom, 5).into(),
        };
        let mut dut = Cache::new(CacheConfig::l1(geom, 64), policy);
        let n = rng.gen_range(1..300) as usize;
        for _ in 0..n {
            let line = LineAddr::new(rng.gen_range(0..128));
            if !dut.access(line, AccessKind::Read, CoreId(0)).is_hit() {
                let hint = rng.gen_bool(0.5);
                dut.fill(
                    AccessCtx {
                        line,
                        core: CoreId(0),
                        victim_hint: hint,
                        class: None,
                    },
                    false,
                );
            }
            assert!(dut.occupancy() <= geom.lines() as usize, "case {case}");
        }
        let s = dut.stats();
        assert!(s.hits() <= s.accesses(), "case {case}");
        assert!(s.fills + s.bypassed_fills <= s.accesses(), "case {case}");
        dut.flush();
        assert_eq!(dut.occupancy(), 0, "case {case}");
        // After a flush every residency is accounted in the reuse histogram.
        assert_eq!(dut.stats().reuse.total(), dut.stats().fills, "case {case}");
    }
}

/// A bypassing policy must never bypass when the set has free space.
#[test]
fn no_bypass_with_free_ways() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x5eed_2003 ^ case);
        let geom = CacheGeometry::new(1024, 4, 128).unwrap(); // 2 sets
        let mut dut = Cache::new(CacheConfig::l1(geom, 0), StaticPdp::new(&geom, 16));
        let n = rng.gen_range(1..64) as usize;
        for _ in 0..n {
            let raw = rng.gen_range(0..16);
            let line = LineAddr::new(raw);
            let set = geom.set_of(line);
            let free_before =
                (0..geom.ways() as usize).count() > dut_occupancy_of_set(&dut, set, geom);
            if !dut.access(line, AccessKind::Read, CoreId(0)).is_hit() {
                let out = dut.fill(AccessCtx::plain(line, CoreId(0)), false);
                if free_before
                    && dut_occupancy_of_set(&dut, set, geom) < geom.ways() as usize
                    && out.bypassed
                {
                    panic!("case {case}: bypassed with a free way available");
                }
            }
        }
    }
}

/// MSHR files conserve targets: everything allocated is returned by
/// completions, in order, exactly once.
#[test]
fn mshr_conserves_targets() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x5eed_2004 ^ case);
        let n = rng.gen_range(1..200) as usize;
        let mut mshr: MshrFile<usize> = MshrFile::new(4, 4);
        let mut outstanding: std::collections::HashMap<u64, Vec<usize>> = Default::default();
        let mut returned = 0usize;
        let mut accepted = 0usize;
        for i in 0..n {
            let line = rng.gen_range(0..8);
            if rng.gen_bool(0.5) {
                let got = mshr.complete(LineAddr::new(line));
                let expect = outstanding.remove(&line);
                assert_eq!(got.clone(), expect, "case {case}");
                returned += got.map_or(0, |v| v.len());
            } else if mshr.allocate(LineAddr::new(line), i).is_ok() {
                outstanding.entry(line).or_default().push(i);
                accepted += 1;
            }
        }
        // Drain the rest.
        let lines: Vec<_> = mshr.lines().collect();
        for line in lines {
            let got = mshr.complete(line).unwrap();
            let expect = outstanding.remove(&line.raw()).unwrap();
            assert_eq!(&got, &expect, "case {case}");
            returned += got.len();
        }
        assert_eq!(returned, accepted, "case {case}");
        assert!(mshr.is_empty(), "case {case}");
        assert!(outstanding.is_empty(), "case {case}");
    }
}

fn dut_occupancy_of_set(dut: &Cache, set: usize, geom: CacheGeometry) -> usize {
    // Count occupancy of one set by probing all possible lines of that set
    // in the small test universe.
    (0u64..16)
        .filter(|&raw| geom.set_of(LineAddr::new(raw)) == set && dut.contains(LineAddr::new(raw)))
        .count()
}
