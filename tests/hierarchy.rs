//! Cross-crate conservation invariants: requests never appear or vanish
//! between the cores, the networks, the L2 banks and DRAM.

use gcache::prelude::*;

fn run(name: &str, policy: L1PolicyKind) -> SimStats {
    let bench = by_name(name, Scale::Test).expect("Table 1 benchmark");
    Gpu::new(GpuConfig::fermi_with_policy(policy).unwrap())
        .run_kernel(bench.as_ref())
        .expect("simulation completes")
}

fn check_invariants(s: &SimStats) {
    let ctx = format!("{} [{}]", s.kernel, s.design);

    // Every coalesced transaction becomes exactly one L1 access.
    assert_eq!(
        s.core.transactions,
        s.l1.accesses(),
        "{ctx}: txns vs L1 accesses"
    );

    // Networks deliver everything they accept.
    assert_eq!(
        s.noc_req.packets, s.noc_req.delivered,
        "{ctx}: request network lost packets"
    );
    assert_eq!(
        s.noc_resp.packets, s.noc_resp.delivered,
        "{ctx}: response network lost packets"
    );

    // Every request packet reaches an L2 bank.
    assert_eq!(
        s.noc_req.delivered,
        s.l2.accesses(),
        "{ctx}: L2 sees all requests"
    );

    // DRAM reads = L2 read misses (write misses fetch too: write-allocate),
    // i.e. one fetch per L2 fill.
    assert_eq!(s.dram.reads, s.l2.fills, "{ctx}: DRAM fetches vs L2 fills");

    // Dirty evictions + final flush = DRAM writes (write-backs) — DRAM
    // writes can be slightly lower only if a write-back was dropped on a
    // full queue, which the partition counts as a stall; tolerate zero.
    assert!(
        s.dram.writes <= s.l2.writebacks,
        "{ctx}: more DRAM writes than write-backs"
    );

    // Bypassed fills never exceed misses.
    assert!(
        s.l1.bypassed_fills <= s.l1.misses(),
        "{ctx}: bypasses bounded by misses"
    );

    // Fills + bypasses = read misses that went out and came back; bounded
    // by total misses.
    assert!(
        s.l1.fills + s.l1.bypassed_fills <= s.l1.misses() + s.l1.evictions,
        "{ctx}"
    );

    // IPC is positive and bounded by issue width (1/core/cycle).
    assert!(s.ipc() > 0.0, "{ctx}: zero IPC");
    assert!(s.ipc() <= 16.0, "{ctx}: IPC beyond issue bandwidth");
}

#[test]
fn conservation_holds_for_representative_benchmarks() {
    for name in ["SPMV", "BFS", "KMN", "FWT", "WP", "NW"] {
        for policy in [
            L1PolicyKind::Lru,
            L1PolicyKind::GCache(GCacheConfig::default()),
            L1PolicyKind::StaticPdp { pd: 8 },
        ] {
            check_invariants(&run(name, policy));
        }
    }
}

#[test]
fn conservation_holds_for_all_benchmarks_under_baseline() {
    for bench in registry(Scale::Test) {
        check_invariants(&run(bench.info().name, L1PolicyKind::Lru));
    }
}

#[test]
fn atomics_flow_through_partitions() {
    // PVC is the benchmark with atomics: they must reach the AOU.
    let s = run("PVC", L1PolicyKind::Lru);
    assert!(s.partition.atomics > 0, "PVC atomics must be serviced");
    assert_eq!(
        s.l1.atomics, s.partition.atomics,
        "every atomic reaches the AOU exactly once"
    );
}
