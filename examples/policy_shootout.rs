//! Policy shootout: one benchmark, every L1 management design from the
//! paper's evaluation (BS, BS-S, PDP-3, PDP-8, SPDP-B, GC), side by side.
//!
//! ```text
//! cargo run --release --example policy_shootout [BENCH]
//! ```
//!
//! `BENCH` is a Table 1 abbreviation (default: BFS).

use gcache::prelude::*;
use gcache_core::policy::pdp_dyn::DynamicPdpConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "BFS".to_string());
    let bench = by_name(&name, Scale::Paper)
        .unwrap_or_else(|| panic!("unknown benchmark {name:?}; see Table 1"));
    let info = bench.info();
    println!(
        "{} — {} ({}, {})\n",
        info.name, info.description, info.suite, info.category
    );

    let designs = [
        L1PolicyKind::Lru,
        L1PolicyKind::Srrip { bits: 3 },
        L1PolicyKind::DynamicPdp(DynamicPdpConfig::pdp3()),
        L1PolicyKind::DynamicPdp(DynamicPdpConfig::pdp8()),
        L1PolicyKind::StaticPdp { pd: 12 },
        L1PolicyKind::GCache(GCacheConfig::default()),
    ];

    println!(
        "{:8} {:>8} {:>9} {:>10} {:>10} {:>9}",
        "design", "IPC", "speedup", "L1 miss", "bypassed", "DRAM rd"
    );
    let mut baseline: Option<SimStats> = None;
    for policy in designs {
        let stats = Gpu::new(GpuConfig::fermi_with_policy(policy)?).run_kernel(bench.as_ref())?;
        let speedup = baseline.as_ref().map_or(1.0, |b| stats.speedup_over(b));
        println!(
            "{:8} {:>8.3} {:>8.3}x {:>9.1}% {:>9.1}% {:>9}",
            stats.design,
            stats.ipc(),
            speedup,
            stats.l1_miss_rate() * 100.0,
            stats.l1_bypass_ratio() * 100.0,
            stats.dram.reads,
        );
        if baseline.is_none() {
            baseline = Some(stats);
        }
    }
    Ok(())
}
