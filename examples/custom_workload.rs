//! Bring your own kernel: implement [`Kernel`] for an application the
//! workload crate doesn't ship — here, a histogram over skewed data
//! (hot bins contended by every warp + streaming input), then check
//! whether G-Cache helps it.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use gcache::prelude::*;
use gcache_core::addr::Addr;

/// A histogram kernel: streaming input, atomics into a skewed bin array.
struct Histogram {
    ctas: usize,
    items_per_warp: usize,
    hot_bins_lines: u64,
}

impl Kernel for Histogram {
    fn name(&self) -> &str {
        "histogram"
    }

    fn grid(&self) -> GridDim {
        GridDim {
            ctas: self.ctas,
            threads_per_cta: 128,
        }
    }

    fn warp_program(&self, cta: usize, warp: usize) -> Box<dyn WarpProgram> {
        let wid = (cta * 4 + warp) as u64;
        // A deterministic pseudo-random walk keyed by the warp id.
        let mut state = wid.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut ops = Vec::new();
        for i in 0..self.items_per_warp as u64 {
            // Input chunk: coalesced stream.
            ops.push(Op::strided_load(
                Addr::new((wid * self.items_per_warp as u64 + i) * 128),
                4,
                32,
            ));
            // Bin lookups: 80% of keys land in the hot bins.
            let line = if next() % 10 < 8 {
                next() % self.hot_bins_lines
            } else {
                self.hot_bins_lines + next() % (self.hot_bins_lines * 64)
            };
            ops.push(Op::Load {
                addrs: (0..32)
                    .map(|_| Some(Addr::new((1 << 36) + line * 128)))
                    .collect(),
            });
            // Count bump (coalesced atomic on the same bin line).
            if i % 4 == 0 {
                ops.push(Op::Atomic {
                    addrs: (0..32)
                        .map(|_| Some(Addr::new((1 << 36) + line * 128)))
                        .collect(),
                });
            }
        }
        Box::new(TraceProgram::new(ops))
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kernel = Histogram {
        ctas: 32,
        items_per_warp: 24,
        hot_bins_lines: 512,
    };

    println!("Custom kernel '{}' on the Table 2 GPU:\n", kernel.name());
    let bs = Gpu::new(GpuConfig::fermi_with_policy(L1PolicyKind::Lru)?).run_kernel(&kernel)?;
    let gc = Gpu::new(GpuConfig::fermi_with_policy(L1PolicyKind::GCache(
        GCacheConfig::default(),
    ))?)
    .run_kernel(&kernel)?;

    println!("{bs}\n");
    println!("{gc}\n");
    println!(
        "verdict: G-Cache {} this kernel ({:+.1}% IPC)",
        if gc.ipc() >= bs.ipc() {
            "helps"
        } else {
            "does not help"
        },
        (gc.speedup_over(&bs) - 1.0) * 100.0
    );
    Ok(())
}
