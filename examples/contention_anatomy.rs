//! Anatomy of the G-Cache mechanism, at cache level (no GPU simulation):
//! replays the paper's Figure 7 access walk against a real `Cache` pair —
//! a 2-way G-Cache L1 backed by an L2 with victim bits — narrates every
//! decision, and then replays the same walk from the structured trace
//! ring, filtered down to one streaming line's contention anatomy.
//!
//! ```text
//! cargo run --example contention_anatomy
//! ```

use gcache::prelude::*;
use gcache_core::geometry::CacheGeometry;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One 2-way L1 set under G-Cache (Figure 7's configuration).
    let l1_geom = CacheGeometry::new(256, 2, 128)?;
    let mut l1 = Cache::new(CacheConfig::l1(l1_geom, 0), GCache::with_defaults(&l1_geom));

    // A small L2 with one victim bit per core.
    let l2_geom = CacheGeometry::new(16 * 1024, 16, 128)?;
    let mut l2 = Cache::with_victim_bits(CacheConfig::l2(l2_geom, 0), Lru::new(&l2_geom), 2, 1);

    // One shared trace ring records what both caches did, event by event.
    let ring = SharedTraceRing::new(256);
    l1.set_trace(TraceSource::new(TraceLevel::L1, 0), ring.sink());
    l2.set_trace(TraceSource::new(TraceLevel::L2, 0), ring.sink());

    let core = CoreId(0);
    let a1 = LineAddr::new(0); // hot
    let a2 = LineAddr::new(2); // hot (same L1 set: 2 sets in this tiny L1)
    let b = |i: u64| LineAddr::new(4 + 2 * i); // streaming, same set

    // The access stream of Figure 7: a1 a2 (fill), contention replays, then
    // a stream of b-lines that should be bypassed.
    let walk: Vec<LineAddr> = vec![a1, a2, a1, a2, b(0), b(1), a1, a2, b(2), b(3), a1, a2];

    println!("Figure 7 walk on a 2-way G-Cache set (TH_hot=2):\n");
    for (i, line) in walk.iter().copied().enumerate() {
        ring.set_time(i as u64 + 1); // "cycle" = walk step, for the replay
        let l1_lookup = l1.access(line, AccessKind::Read, core);
        let outcome = match l1_lookup {
            Lookup::Hit { .. } => "L1 hit".to_string(),
            Lookup::Miss => {
                // Go to L2; its victim bit for this core is the hint.
                let hint = match l2.access(line, AccessKind::Read, core) {
                    Lookup::Hit { victim_hint } => victim_hint,
                    Lookup::Miss => {
                        l2.fill(AccessCtx::plain(line, core), false);
                        false
                    }
                };
                let fill = l1.fill(
                    AccessCtx {
                        line,
                        core,
                        victim_hint: hint,
                        class: None,
                    },
                    false,
                );
                match (hint, fill.bypassed) {
                    (true, true) => "L1 miss, hint=1 -> BYPASSED".to_string(),
                    (true, false) => "L1 miss, hint=1 -> inserted hot".to_string(),
                    (false, true) => "L1 miss -> BYPASSED".to_string(),
                    (false, false) => "L1 miss -> inserted".to_string(),
                }
            }
        };
        println!("  {:>2}. access {line}  =>  {outcome}", i + 1);
    }

    let s = l1.stats();
    println!(
        "\nL1 totals: {} accesses, {} hits, {} fills, {} bypassed",
        s.accesses(),
        s.hits(),
        s.fills,
        s.bypassed_fills
    );
    println!("The hot lines survive; the b-stream is kept out of the set.");

    // The same story, replayed from the trace ring. First the G-Cache
    // switch decisions (the per-set state machine the narration above can
    // only infer), then one streaming line's full anatomy across levels.
    let events = ring.events();
    println!(
        "\nSwitch flips recorded by the trace ring ({} events total):\n",
        ring.recorded()
    );
    let switches = dump_filtered(
        &events,
        &TraceFilter {
            level: Some(TraceLevel::L1),
            ..TraceFilter::default()
        },
    );
    for line in switches.lines().filter(|l| l.contains("switch")) {
        println!("  {line}");
    }

    let probe = b(2); // the first bypassed streaming line
    println!("\nAnatomy of streaming line {probe} (all levels, filtered):\n");
    print!(
        "{}",
        dump_filtered(&events, &TraceFilter::line(probe))
            .lines()
            .map(|l| format!("  {l}\n"))
            .collect::<String>()
    );
    Ok(())
}
