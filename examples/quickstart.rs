//! Quickstart: run one of the paper's benchmarks on the simulated GPU
//! under the baseline (LRU) and under G-Cache, and compare.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use gcache::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // BFS: the paper's most prominent irregular workload — streaming
    // frontier, hub nodes contended in the L1s.
    let bfs = by_name("BFS", Scale::Paper).expect("BFS is in Table 1");

    println!(
        "Simulating {} on the Table 2 GPU (16 cores, 32KB L1s)...\n",
        bfs.name()
    );

    let baseline =
        Gpu::new(GpuConfig::fermi_with_policy(L1PolicyKind::Lru)?).run_kernel(bfs.as_ref())?;
    let gcache = Gpu::new(GpuConfig::fermi_with_policy(L1PolicyKind::GCache(
        GCacheConfig::default(),
    ))?)
    .run_kernel(bfs.as_ref())?;

    println!("{baseline}\n");
    println!("{gcache}\n");

    println!(
        "G-Cache speedup over baseline: {:.3}x  (miss rate {:.1}% -> {:.1}%, {:.1}% of fills bypassed)",
        gcache.speedup_over(&baseline),
        baseline.l1_miss_rate() * 100.0,
        gcache.l1_miss_rate() * 100.0,
        gcache.l1_bypass_ratio() * 100.0,
    );
    Ok(())
}
